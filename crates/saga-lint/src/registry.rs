//! The env-toggle registry: a markdown table in ARCHITECTURE.md that
//! declares every environment variable the workspace reads at runtime.
//!
//! The linter parses the table and cross-checks it against the source in
//! both directions — an undeclared read and a declared-but-never-read row
//! are both findings — so the docs cannot drift from the code.

/// One declared toggle.
#[derive(Debug, Clone)]
pub struct RegistryEntry {
    /// The variable name, e.g. `SAGA_NO_INCREMENTAL`.
    pub name: String,
    /// 1-based line of its table row in the registry document.
    pub line: u32,
}

/// The parsed registry (possibly absent).
#[derive(Debug, Default)]
pub struct Registry {
    /// Declared toggles in table order.
    pub entries: Vec<RegistryEntry>,
    /// True when the registry heading was found at all.
    pub found: bool,
}

impl Registry {
    /// True if `name` is declared.
    pub fn declares(&self, name: &str) -> bool {
        self.entries.iter().any(|e| e.name == name)
    }
}

/// Parses the registry table out of the markdown text: the first table
/// following a heading that contains "Env-toggle registry". A row declares
/// the backtick-quoted ALL_CAPS name in its first cell.
pub fn parse(markdown: &str) -> Registry {
    let mut reg = Registry::default();
    let mut in_section = false;
    let mut in_table = false;
    for (idx, raw) in markdown.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('#') {
            if in_table {
                break;
            }
            in_section = line.to_ascii_lowercase().contains("env-toggle registry");
            if in_section {
                reg.found = true;
            }
            continue;
        }
        if !in_section {
            continue;
        }
        if let Some(row) = line.strip_prefix('|') {
            in_table = true;
            let first_cell = row.split('|').next().unwrap_or("");
            if let Some(name) = backticked_caps(first_cell) {
                reg.entries.push(RegistryEntry {
                    name,
                    line: idx as u32 + 1,
                });
            }
        } else if in_table && !line.is_empty() {
            break; // table ended
        }
    }
    reg
}

/// Extracts `` `NAME` `` from a table cell if NAME is ALL_CAPS_WITH_DIGITS.
fn backticked_caps(cell: &str) -> Option<String> {
    let start = cell.find('`')?;
    let rest = &cell[start + 1..];
    let end = rest.find('`')?;
    let name = &rest[..end];
    is_env_name(name).then(|| name.to_string())
}

/// Is `name` shaped like an environment toggle (`[A-Z][A-Z0-9_]*`)?
pub fn is_env_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        && name
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "\
# Architecture

## Env-toggle registry

| Variable | Read in | Effect |
|----------|---------|--------|
| `SAGA_NO_INCREMENTAL` | `saga-core::incremental` | full rebuild |
| `RAYON_NUM_THREADS` | `vendor/rayon` | worker count |

## Next section

| `NOT_A_TOGGLE` | other table |
";

    #[test]
    fn parses_names_and_lines() {
        let reg = parse(DOC);
        assert!(reg.found);
        let names: Vec<&str> = reg.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["SAGA_NO_INCREMENTAL", "RAYON_NUM_THREADS"]);
        assert_eq!(reg.entries[0].line, 7);
        assert!(reg.declares("RAYON_NUM_THREADS"));
        assert!(!reg.declares("NOT_A_TOGGLE"));
    }

    #[test]
    fn missing_registry_reports_not_found() {
        let reg = parse("# Nothing here\n\njust prose\n");
        assert!(!reg.found);
        assert!(reg.entries.is_empty());
    }

    #[test]
    fn env_name_shape() {
        assert!(is_env_name("SAGA_X1"));
        assert!(!is_env_name("Saga"));
        assert!(!is_env_name(""));
        assert!(!is_env_name("A-B"));
    }
}
