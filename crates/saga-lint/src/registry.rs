//! The env-toggle registry: a markdown table in ARCHITECTURE.md that
//! declares every environment variable the workspace reads at runtime.
//!
//! The linter parses the table and cross-checks it against the source in
//! both directions — an undeclared read and a declared-but-never-read row
//! are both findings — so the docs cannot drift from the code.

/// One declared toggle.
#[derive(Debug, Clone)]
pub struct RegistryEntry {
    /// The variable name, e.g. `SAGA_NO_INCREMENTAL`.
    pub name: String,
    /// 1-based line of its table row in the registry document.
    pub line: u32,
}

/// The parsed registry (possibly absent).
#[derive(Debug, Default)]
pub struct Registry {
    /// Declared toggles in table order.
    pub entries: Vec<RegistryEntry>,
    /// True when the registry heading was found at all.
    pub found: bool,
}

impl Registry {
    /// True if `name` is declared.
    pub fn declares(&self, name: &str) -> bool {
        self.entries.iter().any(|e| e.name == name)
    }
}

/// Parses the registry table out of the markdown text: the first table
/// following a heading that contains "Env-toggle registry". A row declares
/// the backtick-quoted ALL_CAPS name in its first cell.
pub fn parse(markdown: &str) -> Registry {
    let mut reg = Registry::default();
    let mut in_section = false;
    let mut in_table = false;
    for (idx, raw) in markdown.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('#') {
            if in_table {
                break;
            }
            in_section = line.to_ascii_lowercase().contains("env-toggle registry");
            if in_section {
                reg.found = true;
            }
            continue;
        }
        if !in_section {
            continue;
        }
        if let Some(row) = line.strip_prefix('|') {
            in_table = true;
            let first_cell = row.split('|').next().unwrap_or("");
            if let Some(name) = backticked_caps(first_cell) {
                reg.entries.push(RegistryEntry {
                    name,
                    line: idx as u32 + 1,
                });
            }
        } else if in_table && !line.is_empty() {
            break; // table ended
        }
    }
    reg
}

/// One row of the "Atomic protocol registry" table: an atomic binding,
/// its declaring file, and the allowed `method(Ordering, …)` set.
#[derive(Debug, Clone)]
pub struct AtomicRow {
    /// Binding name (matches the declaration the linter extracts).
    pub name: String,
    /// Workspace-relative declaring file.
    pub path: String,
    /// Allowed operations: `(method, allowed orderings)`.
    pub ops: Vec<(String, Vec<String>)>,
    /// 1-based line of the row.
    pub line: u32,
}

/// One row of the "Lock-order registry" table: a mutex binding, its
/// declaring file, and its acquisition rank (nested acquisitions must
/// ascend in rank).
#[derive(Debug, Clone)]
pub struct LockRow {
    /// Binding name.
    pub name: String,
    /// Workspace-relative declaring file.
    pub path: String,
    /// Acquisition rank; a lock may only be taken while holding locks of
    /// strictly lower rank.
    pub rank: i64,
    /// 1-based line of the row.
    pub line: u32,
}

/// The parsed concurrency registries (each possibly absent).
#[derive(Debug, Default)]
pub struct ConcurrencyRegistry {
    /// Atomic protocol rows.
    pub atomics: Vec<AtomicRow>,
    /// Lock-order rows.
    pub locks: Vec<LockRow>,
    /// True when the atomic table's heading was found.
    pub atomics_found: bool,
    /// True when the lock table's heading was found.
    pub locks_found: bool,
}

impl ConcurrencyRegistry {
    /// The atomic row for `name` declared in `path`, if any.
    pub fn atomic(&self, name: &str, path: &str) -> Option<&AtomicRow> {
        self.atomics
            .iter()
            .find(|r| r.name == name && r.path == path)
    }

    /// The lock row for `name` declared in `path`, if any.
    pub fn lock(&self, name: &str, path: &str) -> Option<&LockRow> {
        self.locks.iter().find(|r| r.name == name && r.path == path)
    }
}

/// Parses the two concurrency tables out of the markdown text: the first
/// table after a heading containing "Atomic protocol registry" (columns:
/// name, file, protocol prose, allowed ops as backticked
/// `method(Ordering, …)` items) and the first after "Lock-order registry"
/// (columns: name, file, rank, protocol prose).
pub fn parse_concurrency(markdown: &str) -> ConcurrencyRegistry {
    let mut reg = ConcurrencyRegistry::default();
    for (line, cells) in table_rows(markdown, "atomic protocol registry") {
        reg.atomics_found = true;
        let (Some(name), Some(path)) = (
            cells.first().and_then(|c| backticked(c)),
            cells.get(1).and_then(|c| backticked(c)),
        ) else {
            continue; // header / separator rows
        };
        let ops = cells
            .get(3)
            .map(|c| {
                backticked_all(c)
                    .iter()
                    .filter_map(|s| parse_op(s))
                    .collect()
            })
            .unwrap_or_default();
        reg.atomics.push(AtomicRow {
            name,
            path,
            ops,
            line,
        });
    }
    for (line, cells) in table_rows(markdown, "lock-order registry") {
        reg.locks_found = true;
        let (Some(name), Some(path), Some(rank)) = (
            cells.first().and_then(|c| backticked(c)),
            cells.get(1).and_then(|c| backticked(c)),
            cells.get(2).and_then(|c| c.trim().parse::<i64>().ok()),
        ) else {
            continue;
        };
        reg.locks.push(LockRow {
            name,
            path,
            rank,
            line,
        });
    }
    reg
}

/// The rows (1-based line, `|`-split cells) of the first markdown table
/// after a heading containing `heading_key` (case-insensitive). An empty
/// vec when the heading is absent; heading-only sections yield a single
/// sentinel handled by the callers' cell parsing (no backticked cells).
fn table_rows(markdown: &str, heading_key: &str) -> Vec<(u32, Vec<String>)> {
    let mut rows = Vec::new();
    let mut in_section = false;
    let mut in_table = false;
    for (idx, raw) in markdown.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('#') {
            if in_table {
                break;
            }
            let was = in_section;
            in_section = line.to_ascii_lowercase().contains(heading_key);
            if was && !in_section {
                break; // section ended without a table
            }
            if in_section {
                // sentinel row so callers can tell "heading found, table
                // empty" from "heading absent"
                rows.push((idx as u32 + 1, Vec::new()));
            }
            continue;
        }
        if !in_section {
            continue;
        }
        if let Some(body) = line.strip_prefix('|') {
            in_table = true;
            let cells: Vec<String> = body
                .trim_end_matches('|')
                .split('|')
                .map(|c| c.trim().to_string())
                .collect();
            rows.push((idx as u32 + 1, cells));
        } else if in_table && !line.is_empty() {
            break;
        }
    }
    rows
}

/// The first `` `…` `` span in a table cell.
fn backticked(cell: &str) -> Option<String> {
    let start = cell.find('`')?;
    let rest = &cell[start + 1..];
    let end = rest.find('`')?;
    let s = rest[..end].trim();
    (!s.is_empty()).then(|| s.to_string())
}

/// Every `` `…` `` span in a table cell, in order.
fn backticked_all(cell: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = cell;
    while let Some(start) = rest.find('`') {
        rest = &rest[start + 1..];
        let Some(end) = rest.find('`') else { break };
        let s = rest[..end].trim();
        if !s.is_empty() {
            out.push(s.to_string());
        }
        rest = &rest[end + 1..];
    }
    out
}

/// Parses `method(Ord1, Ord2)` into `(method, [orderings])`.
fn parse_op(s: &str) -> Option<(String, Vec<String>)> {
    let open = s.find('(')?;
    let close = s.rfind(')')?;
    let method = s[..open].trim();
    if method.is_empty() {
        return None;
    }
    let ords: Vec<String> = s[open + 1..close]
        .split(',')
        .map(|o| o.trim().to_string())
        .filter(|o| !o.is_empty())
        .collect();
    Some((method.to_string(), ords))
}

/// Extracts `` `NAME` `` from a table cell if NAME is ALL_CAPS_WITH_DIGITS.
fn backticked_caps(cell: &str) -> Option<String> {
    let start = cell.find('`')?;
    let rest = &cell[start + 1..];
    let end = rest.find('`')?;
    let name = &rest[..end];
    is_env_name(name).then(|| name.to_string())
}

/// Is `name` shaped like an environment toggle (`[A-Z][A-Z0-9_]*`)?
pub fn is_env_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        && name
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "\
# Architecture

## Env-toggle registry

| Variable | Read in | Effect |
|----------|---------|--------|
| `SAGA_NO_INCREMENTAL` | `saga-core::incremental` | full rebuild |
| `RAYON_NUM_THREADS` | `vendor/rayon` | worker count |

## Next section

| `NOT_A_TOGGLE` | other table |
";

    #[test]
    fn parses_names_and_lines() {
        let reg = parse(DOC);
        assert!(reg.found);
        let names: Vec<&str> = reg.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["SAGA_NO_INCREMENTAL", "RAYON_NUM_THREADS"]);
        assert_eq!(reg.entries[0].line, 7);
        assert!(reg.declares("RAYON_NUM_THREADS"));
        assert!(!reg.declares("NOT_A_TOGGLE"));
    }

    #[test]
    fn missing_registry_reports_not_found() {
        let reg = parse("# Nothing here\n\njust prose\n");
        assert!(!reg.found);
        assert!(reg.entries.is_empty());
    }

    const CONC_DOC: &str = "\
# Architecture

#### Atomic protocol registry

| Binding | Declared in | Protocol | Allowed ops |
|---------|-------------|----------|-------------|
| `remaining` | `vendor/rayon/src/lib.rs` | termination count | `load(Acquire)`, `fetch_sub(Release)` |
| `cursor` | `vendor/rayon/src/lib.rs` | claim index | `fetch_add(Relaxed)` |

#### Lock-order registry

| Binding | Declared in | Rank | Protocol |
|---------|-------------|------|----------|
| `deques` | `vendor/rayon/src/lib.rs` | 1 | per-worker queues |
| `slots` | `vendor/rayon/src/lib.rs` | 2 | result slots |
";

    #[test]
    fn concurrency_tables_parse() {
        let reg = parse_concurrency(CONC_DOC);
        assert!(reg.atomics_found && reg.locks_found);
        let r = reg
            .atomic("remaining", "vendor/rayon/src/lib.rs")
            .expect("remaining row");
        assert_eq!(
            r.ops,
            [
                ("load".to_string(), vec!["Acquire".to_string()]),
                ("fetch_sub".to_string(), vec!["Release".to_string()]),
            ]
        );
        assert!(reg.atomic("remaining", "elsewhere.rs").is_none());
        assert_eq!(
            reg.lock("deques", "vendor/rayon/src/lib.rs").unwrap().rank,
            1
        );
        assert_eq!(
            reg.lock("slots", "vendor/rayon/src/lib.rs").unwrap().rank,
            2
        );
    }

    #[test]
    fn concurrency_tables_absent() {
        let reg = parse_concurrency("# Nothing\n");
        assert!(!reg.atomics_found && !reg.locks_found);
        assert!(reg.atomics.is_empty() && reg.locks.is_empty());
    }

    #[test]
    fn op_spec_parsing() {
        assert_eq!(
            parse_op("compare_exchange(SeqCst, Relaxed)"),
            Some((
                "compare_exchange".to_string(),
                vec!["SeqCst".to_string(), "Relaxed".to_string()]
            ))
        );
        assert_eq!(parse_op("noparens"), None);
    }

    #[test]
    fn env_name_shape() {
        assert!(is_env_name("SAGA_X1"));
        assert!(!is_env_name("Saga"));
        assert!(!is_env_name(""));
        assert!(!is_env_name("A-B"));
    }
}
