//! The concurrency-protocol rule families: `atomics-discipline`,
//! `lock-discipline`, `unsafe-discipline`.
//!
//! These extend the token-sequence approach of [`crate::rules`] to the
//! concurrency surface of the workspace:
//!
//! * **`atomics-discipline`** — every atomic static/field/local must be
//!   declared in ARCHITECTURE.md's "Atomic protocol registry" table
//!   (name + declaring file + allowed `op(Ordering)` set), and every
//!   literal `Ordering::X` use in source must stay inside the declared
//!   protocol. Cross-checked in both directions in `lib.rs`.
//! * **`lock-discipline`** — every workspace `Mutex` must be declared in
//!   the "Lock-order registry" table with an acquisition rank; nested
//!   `lock()` calls under a held lock must acquire in ascending rank
//!   order, and `.lock().unwrap()`/`.expect()` is flagged in favor of the
//!   poison-recovery idiom
//!   `.unwrap_or_else(|poisoned| poisoned.into_inner())`.
//! * **`unsafe-discipline`** — every `unsafe` block/fn/impl needs an
//!   adjacent `// SAFETY:` comment (or a `/// # Safety` doc section for
//!   fns), and calls to `#[target_feature]` functions must sit behind a
//!   runtime feature gate (see [`Config::feature_gates`]).
//!
//! This module *collects* the per-file facts (declarations, ordering
//! uses, nesting events) and emits the purely local findings (missing
//! SAFETY comments, ungated calls, poison-unwrap); the registry
//! cross-checks live in `lib.rs` because they need the whole workspace
//! plus the parsed ARCHITECTURE.md tables.
//!
//! Like the rest of the linter this is a token heuristic, not a type
//! checker: receivers are resolved to the last path segment before the
//! method call (`self.inner.remaining.load(..)` → `remaining`), so the
//! registry keys on (binding name, declaring file). That granularity is
//! deliberate — it is exactly what a reviewer sees in the diff.

use crate::config::Config;
use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::scan::FileScan;

/// The atomic orderings `std::sync::atomic::Ordering` defines; an
/// `Ordering::X` token sequence with any other `X` (e.g.
/// `cmp::Ordering::Less`) is not an atomics use.
pub const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// The `std::sync::atomic` type names; other `Atomic*` identifiers
/// (project structs like `AtomicRow`) are not atomics.
const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicUsize",
    "AtomicIsize",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicPtr",
];

/// Atomic methods that take an `Ordering` argument; a literal ordering
/// inside any other call (`matches!`, plain fns) is ignored.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_update",
];

/// A declared atomic binding (static, field, local, or parameter).
#[derive(Debug, Clone)]
pub struct AtomicDecl {
    /// Binding name (registry key, together with the declaring file).
    pub name: String,
    /// 1-based declaration line.
    pub line: u32,
    /// Column of the `Atomic*` type token.
    pub col: u32,
}

/// One literal-`Ordering` atomic operation.
#[derive(Debug, Clone)]
pub struct AtomicUse {
    /// Receiver binding name (last path segment before the method).
    pub receiver: String,
    /// The atomic method (`load`, `fetch_sub`, …).
    pub method: String,
    /// The literal ordering variant (`Relaxed`, `Release`, …).
    pub ordering: String,
    /// 1-based line of the `Ordering` token.
    pub line: u32,
    /// Column of the `Ordering` token.
    pub col: u32,
}

/// A declared `Mutex` binding.
#[derive(Debug, Clone)]
pub struct LockDecl {
    /// Binding name (registry key, together with the declaring file).
    pub name: String,
    /// 1-based declaration line.
    pub line: u32,
    /// Column of the `Mutex` type token.
    pub col: u32,
}

/// A `lock()` acquired while another lock is (heuristically) held.
#[derive(Debug, Clone)]
pub struct LockNesting {
    /// The innermost already-held receiver.
    pub outer: String,
    /// The newly acquired receiver.
    pub inner: String,
    /// 1-based line of the inner `lock` call.
    pub line: u32,
    /// Column of the inner `lock` call.
    pub col: u32,
}

/// Everything the concurrency pass extracts from one file.
#[derive(Debug, Default)]
pub struct ConcurrencyScan {
    /// Atomic declarations, deduplicated by name.
    pub atomic_decls: Vec<AtomicDecl>,
    /// Literal-ordering atomic operations.
    pub atomic_uses: Vec<AtomicUse>,
    /// Mutex declarations, deduplicated by name.
    pub lock_decls: Vec<LockDecl>,
    /// Nested acquisitions, for rank adjudication in `lib.rs`.
    pub nestings: Vec<LockNesting>,
    /// Purely local findings (SAFETY comments, poison unwraps, ungated
    /// `#[target_feature]` calls) — raw, before suppression filtering.
    pub findings: Vec<Finding>,
}

/// A lock currently held at some brace depth during the linear walk.
struct Held {
    receiver: String,
    guard: Option<String>,
    depth: i32,
}

/// Runs the three concurrency rule families over one non-test file.
/// Test/bench files and `#[cfg(test)]` regions are out of scope: the
/// protocols govern shipped code.
pub fn scan_file(rel: &str, scan: &FileScan, cfg: &Config) -> ConcurrencyScan {
    let mut out = ConcurrencyScan::default();
    let sig: Vec<usize> = (0..scan.toks.len())
        .filter(|&i| !scan.toks[i].is_comment())
        .collect();
    let finding = |rule: &'static str, line: u32, col: u32, message: String| Finding {
        file: rel.to_string(),
        line,
        col,
        rule,
        message,
    };

    // pass 0: names of `#[target_feature]`-gated functions
    let mut gated: Vec<String> = Vec::new();
    for p in 0..sig.len() {
        if scan.toks[sig[p]].is_ident("target_feature") {
            for q in p + 1..(p + 16).min(sig.len()) {
                if scan.toks[sig[q]].is_ident("fn") {
                    if let Some(name) = sig.get(q + 1).map(|&i| &scan.toks[i]) {
                        if name.kind == TokKind::Ident {
                            gated.push(name.text.clone());
                        }
                    }
                    break;
                }
            }
        }
    }

    // pass 1: everything else, one linear walk with lock-hold tracking
    let mut depth = 0i32;
    let mut held: Vec<Held> = Vec::new();
    for p in 0..sig.len() {
        let i = sig[p];
        let t = &scan.toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            held.retain(|h| h.depth <= depth);
        } else if t.is_punct(';') {
            held.retain(|h| !(h.guard.is_none() && h.depth == depth));
        }
        if t.kind != TokKind::Ident || scan.in_test[i] {
            continue;
        }

        // explicit guard drop: `drop(name)`
        if t.text == "drop" && is_punct_at(scan, &sig, p + 1, '(') {
            if let Some(g) = ident_at(scan, &sig, p + 2) {
                if is_punct_at(scan, &sig, p + 3, ')') {
                    held.retain(|h| h.guard.as_deref() != Some(g));
                }
            }
        }

        // ---- atomic declarations
        if ATOMIC_TYPES.contains(&t.text.as_str()) {
            if let Some(name) = binding_name(scan, &sig, p) {
                if !out.atomic_decls.iter().any(|d| d.name == name) {
                    out.atomic_decls.push(AtomicDecl {
                        name,
                        line: t.line,
                        col: t.col,
                    });
                }
            }
        }

        // ---- mutex declarations (`Mutex` exactly; `MutexGuard` etc. are
        // not acquisition points)
        if t.text == "Mutex" {
            if let Some(name) = binding_name(scan, &sig, p) {
                if !out.lock_decls.iter().any(|d| d.name == name) {
                    out.lock_decls.push(LockDecl {
                        name,
                        line: t.line,
                        col: t.col,
                    });
                }
            }
        }

        // ---- literal `Ordering::X` atomic uses
        if t.text == "Ordering"
            && is_punct_at(scan, &sig, p + 1, ':')
            && is_punct_at(scan, &sig, p + 2, ':')
        {
            if let Some(variant) = ident_at(scan, &sig, p + 3) {
                if ORDERINGS.contains(&variant) {
                    if let Some((receiver, method)) = enclosing_atomic_call(scan, &sig, p) {
                        out.atomic_uses.push(AtomicUse {
                            receiver,
                            method,
                            ordering: variant.to_string(),
                            line: t.line,
                            col: t.col,
                        });
                    }
                }
            }
        }

        // ---- lock() calls: poison idiom + nesting
        if t.text == "lock"
            && p > 0
            && scan.toks[sig[p - 1]].is_punct('.')
            && is_punct_at(scan, &sig, p + 1, '(')
            && is_punct_at(scan, &sig, p + 2, ')')
        {
            let receiver = if p >= 2 {
                ident_before(scan, &sig, p - 2)
            } else {
                None
            };
            if let Some(receiver) = receiver {
                if let Some(h) = held.last() {
                    out.nestings.push(LockNesting {
                        outer: h.receiver.clone(),
                        inner: receiver.clone(),
                        line: t.line,
                        col: t.col,
                    });
                }
                // walk the post-lock chain: poison-handling adapters only
                let mut r = p + 3;
                while let Some(m) = (r + 1 < sig.len())
                    .then(|| &scan.toks[sig[r]])
                    .filter(|t| t.is_punct('.'))
                    .and_then(|_| ident_at(scan, &sig, r + 1))
                {
                    match m {
                        "unwrap" | "expect" => {
                            let mt = &scan.toks[sig[r + 1]];
                            out.findings.push(finding(
                                "lock-discipline",
                                mt.line,
                                mt.col,
                                format!(
                                    "`.lock().{m}(…)` aborts on poison — use the \
                                     poison-recovery idiom \
                                     `.unwrap_or_else(|poisoned| poisoned.into_inner())` \
                                     (a panicked holder already unwound; the data is \
                                     still consistent for these protocols)"
                                ),
                            ));
                        }
                        "unwrap_or_else" => {}
                        _ => break,
                    }
                    r = skip_call_args(scan, &sig, r + 2);
                }
                let guard = let_binding_before(scan, &sig, p)
                    .filter(|_| is_punct_at(scan, &sig, r, ';'))
                    .map(str::to_string);
                held.push(Held {
                    receiver,
                    guard,
                    depth,
                });
            }
        }

        // ---- unsafe blocks / fns / impls
        if t.text == "unsafe" {
            let next = sig.get(p + 1).map(|&j| &scan.toks[j]);
            let (form, wants_doc) = match next {
                Some(n) if n.is_punct('{') => ("block", false),
                Some(n) if n.is_ident("fn") => ("fn", true),
                Some(n) if n.is_ident("impl") => ("impl", true),
                Some(n) if n.is_ident("extern") => ("extern block", false),
                _ => ("block", false),
            };
            if !has_safety_comment(scan, i, wants_doc) {
                let hint = if wants_doc {
                    "document the contract in a `/// # Safety` section or an \
                     adjacent `// SAFETY:` comment"
                } else {
                    "state the invariant that makes it sound in an adjacent \
                     `// SAFETY:` comment"
                };
                out.findings.push(finding(
                    "unsafe-discipline",
                    t.line,
                    t.col,
                    format!("`unsafe` {form} without a SAFETY justification — {hint}"),
                ));
            }
        }

        // ---- calls to #[target_feature] fns must sit behind a gate
        if gated.iter().any(|g| g == &t.text)
            && is_punct_at(scan, &sig, p + 1, '(')
            && !(p > 0 && scan.toks[sig[p - 1]].is_ident("fn"))
        {
            let enclosing = scan.enclosing_fn(i);
            let self_gated = enclosing.is_some_and(|f| gated.iter().any(|g| g == f));
            if !self_gated && !gate_precedes(scan, &sig, p, cfg) {
                out.findings.push(finding(
                    "unsafe-discipline",
                    t.line,
                    t.col,
                    format!(
                        "call to `#[target_feature]` fn `{}` without a runtime \
                         feature gate ({}) in the enclosing function — an \
                         unguarded call on unsupported hardware is undefined \
                         behavior",
                        t.text,
                        cfg.feature_gates.join("/"),
                    ),
                ));
            }
        }
    }
    out
}

/// Is significant position `p` the punct `c`?
fn is_punct_at(scan: &FileScan, sig: &[usize], p: usize, c: char) -> bool {
    sig.get(p).is_some_and(|&i| scan.toks[i].is_punct(c))
}

/// The identifier text at significant position `p`, if it is one.
fn ident_at<'a>(scan: &'a FileScan, sig: &[usize], p: usize) -> Option<&'a str> {
    sig.get(p).and_then(|&i| {
        let t = &scan.toks[i];
        (t.kind == TokKind::Ident).then_some(t.text.as_str())
    })
}

/// Walks left over a `seg :: seg :: …` path prefix ending at `p`,
/// returning the position of the first segment.
fn path_start(scan: &FileScan, sig: &[usize], mut p: usize) -> usize {
    while p >= 3
        && scan.toks[sig[p - 1]].is_punct(':')
        && scan.toks[sig[p - 2]].is_punct(':')
        && scan.toks[sig[p - 3]].kind == TokKind::Ident
    {
        p -= 3;
    }
    p
}

/// The binding name a type token at `p` declares, if the surrounding
/// tokens form a declaration:
///
/// * pattern A — `name : [&] [mut] ['a] [Outer<]* [path::]Type` (struct
///   fields, statics, typed lets, fn params, struct-literal inits);
/// * pattern B — `let [mut] name = [path::]Type :: new` (inferred lets).
///
/// `use` imports, `impl` headers, return types and bare expression uses
/// all fail the walk and return `None`.
fn binding_name(scan: &FileScan, sig: &[usize], p: usize) -> Option<String> {
    let t = |q: usize| &scan.toks[sig[q]];
    let mut q = path_start(scan, sig, p);
    if q >= 1 && t(q - 1).is_punct('=') {
        // pattern B: value position — only an inferred `let` binds here
        if q >= 3 && t(q - 2).kind == TokKind::Ident {
            let kw = &t(q - 3);
            if kw.is_ident("let") || kw.is_ident("mut") {
                return Some(t(q - 2).text.clone());
            }
        }
        return None;
    }
    // pattern A: walk left over type-position noise to the single `:`.
    // A `&` anywhere in the type makes the binding a *reference* — it
    // aliases a lock/atomic declared (and registered) elsewhere, so it is
    // not itself a declaration.
    let mut expect_container = false;
    let mut saw_ref = false;
    loop {
        if q == 0 {
            return None;
        }
        let prev = t(q - 1);
        if prev.is_punct('<')
            || prev.is_punct('&')
            || prev.is_punct('[')
            || prev.kind == TokKind::Lifetime
            || prev.is_ident("mut")
            || prev.is_ident("dyn")
        {
            expect_container = prev.is_punct('<');
            saw_ref |= prev.is_punct('&');
            q -= 1;
            continue;
        }
        if expect_container && prev.kind == TokKind::Ident {
            // the container type before `<` (Vec, Arc, Option, …),
            // possibly path-qualified itself
            q = path_start(scan, sig, q - 1);
            expect_container = false;
            continue;
        }
        if prev.is_punct(':')
            && q >= 2
            && !t(q - 2).is_punct(':')
            && t(q - 2).kind == TokKind::Ident
        {
            if saw_ref {
                return None;
            }
            return Some(t(q - 2).text.clone());
        }
        return None;
    }
}

/// From an `Ordering` token at `p`, resolves the enclosing method call:
/// walks left to the unmatched `(`, requires `receiver . method (` with
/// `method` in [`ATOMIC_METHODS`]. Orderings outside such a call
/// (`matches!` arms, `if` arms assigning an ordering variable) resolve
/// to `None` and are ignored.
fn enclosing_atomic_call(scan: &FileScan, sig: &[usize], p: usize) -> Option<(String, String)> {
    let mut depth = 0i32;
    let mut open = None;
    for q in (0..p).rev() {
        let t = &scan.toks[sig[q]];
        if t.is_punct(')') {
            depth += 1;
        } else if t.is_punct('(') {
            if depth == 0 {
                open = Some(q);
                break;
            }
            depth -= 1;
        } else if depth == 0 && (t.is_punct(';') || t.is_punct('{') || t.is_punct('}')) {
            return None;
        }
    }
    let open = open?;
    let method = ident_at(scan, sig, open.checked_sub(1)?)?;
    if !ATOMIC_METHODS.contains(&method) || !is_punct_at(scan, sig, open - 2, '.') {
        return None;
    }
    let receiver = ident_before(scan, sig, open.checked_sub(3)?)?;
    Some((receiver, method.to_string()))
}

/// The receiver name ending at significant position `r`: a bare ident,
/// or an ident followed by a balanced `[…]` index (`deques[victim]`).
fn ident_before(scan: &FileScan, sig: &[usize], mut r: usize) -> Option<String> {
    if scan.toks[sig[r]].is_punct(']') {
        let mut d = 0i32;
        loop {
            let t = &scan.toks[sig[r]];
            if t.is_punct(']') {
                d += 1;
            } else if t.is_punct('[') {
                d -= 1;
                if d == 0 {
                    break;
                }
            }
            r = r.checked_sub(1)?;
        }
        r = r.checked_sub(1)?;
    }
    ident_at(scan, sig, r).map(str::to_string)
}

/// Skips a balanced `( … )` argument list starting at `r` (which may not
/// be a `(` at all, for adapter-free chains); returns the position after.
fn skip_call_args(scan: &FileScan, sig: &[usize], r: usize) -> usize {
    if !is_punct_at(scan, sig, r, '(') {
        return r;
    }
    let mut depth = 0i32;
    for (q, &j) in sig.iter().enumerate().skip(r) {
        let t = &scan.toks[j];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return q + 1;
            }
        }
    }
    sig.len()
}

/// If the statement containing position `p` opens with `let [mut] name =`,
/// the guard binding name.
fn let_binding_before<'a>(scan: &'a FileScan, sig: &[usize], p: usize) -> Option<&'a str> {
    let t = |q: usize| &scan.toks[sig[q]];
    let mut b = p;
    for _ in 0..64 {
        if b == 0 {
            break;
        }
        let prev = t(b - 1);
        if prev.is_punct(';') || prev.is_punct('{') || prev.is_punct('}') {
            break;
        }
        b -= 1;
    }
    let mut q = b;
    if !t(q).is_ident("let") {
        return None;
    }
    q += 1;
    if q < sig.len() && t(q).is_ident("mut") {
        q += 1;
    }
    if q + 1 < sig.len() && t(q).kind == TokKind::Ident && t(q + 1).is_punct('=') {
        return Some(t(q).text.as_str());
    }
    None
}

/// Does an adjacent comment justify the `unsafe` at raw token index `i`?
/// Looks backward over the item's own tokens (attrs, `pub`, doc lines) to
/// the previous statement boundary for a comment containing `SAFETY` (or
/// `# Safety` when `accept_doc`), and — for expression-position blocks —
/// forward past the `{` for a leading interior `// SAFETY:` comment.
fn has_safety_comment(scan: &FileScan, i: usize, accept_doc: bool) -> bool {
    for j in (0..i).rev() {
        let t = &scan.toks[j];
        if t.is_comment() {
            if t.text.contains("SAFETY") || (accept_doc && t.text.contains("# Safety")) {
                return true;
            }
            continue;
        }
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
    }
    // `let x = unsafe { /* SAFETY: … */ … }`: leading interior comment
    let mut j = i + 1;
    while j < scan.toks.len() && !scan.toks[j].is_punct('{') {
        j += 1;
    }
    j += 1;
    while j < scan.toks.len() && scan.toks[j].is_comment() {
        if scan.toks[j].text.contains("SAFETY") {
            return true;
        }
        j += 1;
    }
    false
}

/// Does a runtime feature-gate identifier (from [`Config::feature_gates`])
/// appear earlier in the same enclosing function as the call at `p`?
fn gate_precedes(scan: &FileScan, sig: &[usize], p: usize, cfg: &Config) -> bool {
    let my_fn = scan.fn_of[sig[p]];
    if my_fn.is_none() {
        return false;
    }
    for q in (0..p).rev() {
        let i = sig[q];
        if scan.fn_of[i] != my_fn {
            break;
        }
        let t = &scan.toks[i];
        if t.kind == TokKind::Ident && cfg.feature_gates.iter().any(|g| *g == t.text) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> ConcurrencyScan {
        let scan = FileScan::new(src, false);
        scan_file("x/lib.rs", &scan, &Config::workspace())
    }

    #[test]
    fn atomic_decl_shapes() {
        let src = "struct S { remaining: Arc<AtomicUsize>, cursor: std::sync::atomic::AtomicU64 }\n\
                   static HITS: AtomicUsize = AtomicUsize::new(0);\n\
                   fn f(flag: &AtomicBool) { let local = AtomicUsize::new(3); }\n\
                   use std::sync::atomic::{AtomicUsize, Ordering};\n\
                   fn mk() -> S { S { remaining: Arc::new(AtomicUsize::new(0)), cursor: AtomicU64::new(0) } }";
        let out = run(src);
        let names: Vec<&str> = out.atomic_decls.iter().map(|d| d.name.as_str()).collect();
        // `flag: &AtomicBool` is a reference param — it aliases an atomic
        // declared elsewhere, not a declaration of its own.
        assert_eq!(names, ["remaining", "cursor", "HITS", "local"]);
    }

    #[test]
    fn atomic_uses_resolve_method_receiver_and_ordering() {
        let src = "fn f(s: &S) {\n\
                   s.remaining.fetch_sub(1, Ordering::Release);\n\
                   let v = self.done.load(Ordering::Acquire);\n\
                   let ord = if x { Ordering::Relaxed } else { Ordering::SeqCst };\n\
                   assert!(matches!(o, Ordering::AcqRel));\n\
                   }";
        let uses = run(src).atomic_uses;
        let got: Vec<(String, String, String)> = uses
            .iter()
            .map(|u| (u.receiver.clone(), u.method.clone(), u.ordering.clone()))
            .collect();
        assert_eq!(
            got,
            [
                ("remaining".into(), "fetch_sub".into(), "Release".into()),
                ("done".into(), "load".into(), "Acquire".into()),
            ],
            "bare arms and matches! carry no enclosing atomic call"
        );
    }

    #[test]
    fn lock_decls_and_poison_idiom() {
        let src = "struct P { free: Mutex<Vec<u8>> }\n\
                   static STATS: Mutex<Option<u8>> = Mutex::new(None);\n\
                   fn f(p: &P) {\n\
                   let g = p.free.lock().unwrap_or_else(|e| e.into_inner());\n\
                   let b = p.free.lock().unwrap();\n\
                   }";
        let out = run(src);
        let names: Vec<&str> = out.lock_decls.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["free", "STATS"]);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert_eq!(out.findings[0].rule, "lock-discipline");
        assert!(out.findings[0].message.contains("unwrap_or_else"));
    }

    #[test]
    fn nesting_records_inner_under_held_guard_and_temp_releases() {
        let src = "fn f(a: &M, b: &M) {\n\
                   let g = a.slots.lock().unwrap_or_else(|e| e.into_inner());\n\
                   let h = b.chunks.lock().unwrap_or_else(|e| e.into_inner());\n\
                   drop(g);\n\
                   let k = b.slots.lock().unwrap_or_else(|e| e.into_inner());\n\
                   }\n\
                   fn seq(a: &M) {\n\
                   a.slots.lock().unwrap_or_else(|e| e.into_inner()).push(1);\n\
                   a.chunks.lock().unwrap_or_else(|e| e.into_inner()).clear();\n\
                   }";
        let out = run(src);
        let got: Vec<(String, String)> = out
            .nestings
            .iter()
            .map(|n| (n.outer.clone(), n.inner.clone()))
            .collect();
        // g held when chunks is locked; g dropped before the second slots
        // lock, but h (named guard) is still held; the `seq` fn's
        // temporaries release at each statement end.
        assert_eq!(
            got,
            [
                ("slots".into(), "chunks".into()),
                ("chunks".into(), "slots".into()),
            ]
        );
    }

    #[test]
    fn unsafe_forms_require_safety_comments() {
        let bad = "fn f() { unsafe { g() }; }\nunsafe fn h() {}\n";
        let out = run(bad);
        assert_eq!(out.findings.len(), 2, "{:?}", out.findings);
        assert!(out.findings.iter().all(|f| f.rule == "unsafe-discipline"));

        let good = "fn f() {\n\
                    // SAFETY: g upholds its contract here\n\
                    unsafe { g() };\n\
                    }\n\
                    /// Does things.\n\
                    ///\n\
                    /// # Safety\n\
                    /// Caller must ensure the invariant.\n\
                    unsafe fn h() {}\n\
                    fn k() { let x = unsafe { /* SAFETY: checked above */ p.read() }; }";
        assert!(run(good).findings.is_empty(), "{:?}", run(good).findings);
    }

    #[test]
    fn target_feature_calls_need_a_gate() {
        let src = "#[target_feature(enable = \"avx\")]\n\
                   /// # Safety\n\
                   unsafe fn kern(x: &mut [f64]) {}\n\
                   fn gated(x: &mut [f64]) {\n\
                   if wide_kernels() {\n\
                   // SAFETY: gated on runtime AVX detection above\n\
                   unsafe { kern(x) };\n\
                   }\n\
                   }\n\
                   fn ungated(x: &mut [f64]) {\n\
                   // SAFETY: (wrongly) assumed\n\
                   unsafe { kern(x) };\n\
                   }";
        let out = run(src);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert_eq!(out.findings[0].rule, "unsafe-discipline");
        assert!(out.findings[0].message.contains("`kern`"));
        assert_eq!(out.findings[0].line, 12);
    }

    #[test]
    fn test_code_is_out_of_scope() {
        let src = "#[cfg(test)]\nmod tests {\n\
                   static T: AtomicUsize = AtomicUsize::new(0);\n\
                   fn t() { T.store(1, Ordering::Relaxed); unsafe { g() }; }\n\
                   }";
        let out = run(src);
        assert!(out.atomic_decls.is_empty());
        assert!(out.atomic_uses.is_empty());
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }
}
