//! Structural pass over a lexed file: the lightweight "module map" the
//! rules resolve items against.
//!
//! One linear walk computes, for every token,
//!
//! * whether it sits inside test-gated code (`#[cfg(test)] mod …`,
//!   `#[test] fn …` — any attribute mentioning `test` without `not`),
//! * the innermost enclosing `fn` (so deny lists can target functions,
//!   e.g. the annealer inner loop, without parsing a full AST),
//!
//! and collects every suppression comment (`// saga-lint: allow(<rule>) —
//! <reason>`) with its parse state, so the rule layer can honor valid ones
//! and report malformed ones.

use crate::lexer::{Tok, TokKind};

/// One parsed (or parse-failed) suppression comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// 1-based line of the comment's first character.
    pub line: u32,
    /// 1-based column of the comment.
    pub col: u32,
    /// Rule names inside `allow(...)`, trimmed.
    pub rules: Vec<String>,
    /// True when a non-empty reason follows the `allow(...)` clause.
    pub has_reason: bool,
    /// True when the comment matched the `allow(...)` shape at all.
    pub well_formed: bool,
    /// Set by the rule layer when the suppression actually silences a
    /// finding; a valid suppression that silences nothing is itself a
    /// finding (`suppression-unused`) — dead suppressions hide drift.
    pub used: bool,
}

/// A lexed file plus its per-token structural facts.
pub struct FileScan {
    /// The token stream.
    pub toks: Vec<Tok>,
    /// `in_test[i]` — token `i` is inside test-gated code.
    pub in_test: Vec<bool>,
    /// `fn_of[i]` — index into [`fn_names`](Self::fn_names) of the innermost
    /// enclosing function, if any.
    pub fn_of: Vec<Option<usize>>,
    /// Names of all functions seen, in source order.
    pub fn_names: Vec<String>,
    /// Every `saga-lint:` comment found, parsed.
    pub suppressions: Vec<Suppression>,
}

impl FileScan {
    /// Lexes and structurally scans `src`. With `force_test`, every token is
    /// treated as test code (integration-test files, bench targets).
    pub fn new(src: &str, force_test: bool) -> Self {
        let toks = crate::lexer::lex(src);
        let n = toks.len();
        let mut in_test = vec![force_test; n];
        let mut fn_of: Vec<Option<usize>> = vec![None; n];
        let mut fn_names: Vec<String> = Vec::new();
        let mut suppressions = Vec::new();

        // frames: (is_test_region, fn_index_or_none) opened at brace depth d
        let mut test_frames: Vec<u32> = Vec::new();
        let mut fn_frames: Vec<(usize, u32)> = Vec::new();
        let mut depth: u32 = 0;
        let mut nest: u32 = 0; // () and [] nesting, for `;` pending-reset
        let mut pending_test = false;
        let mut pending_fn: Option<usize> = None;
        let mut awaiting_fn_name = false;

        let mut i = 0usize;
        while i < n {
            let t = &toks[i];
            if !force_test {
                in_test[i] = !test_frames.is_empty();
            }
            fn_of[i] = fn_frames.last().map(|&(f, _)| f);
            if t.is_comment() {
                if let Some(s) = parse_suppression(t) {
                    suppressions.push(s);
                }
                i += 1;
                continue;
            }
            match t.kind {
                TokKind::Punct => match t.text.as_bytes()[0] {
                    b'#' => {
                        // attribute: consume `#` (`!`)? `[ ... ]` atomically so
                        // its contents can't confuse the brace tracking
                        let mut j = i + 1;
                        while j < n && (toks[j].is_comment() || toks[j].is_punct('!')) {
                            j += 1;
                        }
                        if j < n && toks[j].is_punct('[') {
                            let mut bdepth = 0u32;
                            let mut saw_test = false;
                            let mut saw_not = false;
                            while j < n {
                                let a = &toks[j];
                                if !force_test {
                                    in_test[j] = !test_frames.is_empty();
                                }
                                fn_of[j] = fn_frames.last().map(|&(f, _)| f);
                                if a.is_punct('[') {
                                    bdepth += 1;
                                } else if a.is_punct(']') {
                                    bdepth -= 1;
                                    if bdepth == 0 {
                                        break;
                                    }
                                } else if a.is_ident("test") {
                                    saw_test = true;
                                } else if a.is_ident("not") {
                                    saw_not = true;
                                }
                                j += 1;
                            }
                            if saw_test && !saw_not {
                                pending_test = true;
                            }
                            i = j + 1;
                            continue;
                        }
                    }
                    b'{' => {
                        depth += 1;
                        if pending_test {
                            test_frames.push(depth);
                            pending_test = false;
                        }
                        if let Some(f) = pending_fn.take() {
                            fn_frames.push((f, depth));
                        }
                    }
                    b'}' => {
                        if test_frames.last() == Some(&depth) {
                            test_frames.pop();
                        }
                        if fn_frames.last().map(|&(_, d)| d) == Some(depth) {
                            fn_frames.pop();
                        }
                        depth = depth.saturating_sub(1);
                    }
                    b'(' | b'[' => nest += 1,
                    b')' | b']' => nest = nest.saturating_sub(1),
                    b';' if nest == 0 => {
                        // an item ended without a body: `#[cfg(test)] use x;`,
                        // trait method declarations
                        pending_test = false;
                        pending_fn = None;
                    }
                    _ => {}
                },
                TokKind::Ident if t.text == "fn" => {
                    awaiting_fn_name = true;
                }
                TokKind::Ident if awaiting_fn_name => {
                    fn_names.push(t.text.clone());
                    pending_fn = Some(fn_names.len() - 1);
                    awaiting_fn_name = false;
                }
                _ => {}
            }
            if awaiting_fn_name && !t.is_ident("fn") && t.kind != TokKind::Ident {
                // `fn` not followed by a name (fn-pointer types `fn(...)`)
                awaiting_fn_name = false;
            }
            i += 1;
        }

        FileScan {
            toks,
            in_test,
            fn_of,
            fn_names,
            suppressions,
        }
    }

    /// The innermost enclosing function name for token `i`, if any.
    pub fn enclosing_fn(&self, i: usize) -> Option<&str> {
        self.fn_of[i].map(|f| self.fn_names[f].as_str())
    }
}

/// Parses a `saga-lint:` comment. Returns `None` for ordinary comments.
fn parse_suppression(t: &Tok) -> Option<Suppression> {
    // Only a comment that *leads* with the marker is a suppression attempt;
    // prose that merely mentions `saga-lint:` (like these docs) is not.
    let lead = t
        .text
        .trim_start()
        .trim_start_matches(['/', '*', '!'])
        .trim_start();
    let rest = lead.strip_prefix("saga-lint:")?.trim_start();
    let malformed = Suppression {
        line: t.line,
        col: t.col,
        rules: Vec::new(),
        has_reason: false,
        well_formed: false,
        used: false,
    };
    let Some(inner) = rest.strip_prefix("allow(") else {
        return Some(malformed);
    };
    let Some(close) = inner.find(')') else {
        return Some(malformed);
    };
    let rules: Vec<String> = inner[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    // the reason is whatever follows the closing paren, minus a leading
    // separator (em/en dash, hyphen, colon); it is mandatory
    let mut reason = inner[close + 1..].trim_start();
    for sep in ["—", "–", "-", ":"] {
        if let Some(r) = reason.strip_prefix(sep) {
            reason = r.trim_start();
            break;
        }
    }
    let reason = reason.trim_end_matches("*/").trim();
    Some(Suppression {
        line: t.line,
        col: t.col,
        rules,
        has_reason: !reason.is_empty(),
        well_formed: true,
        used: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_regions_are_marked() {
        let src = "fn live() { a(); }\n#[cfg(test)]\nmod tests {\n fn t() { b(); } }\nfn more() {}";
        let s = FileScan::new(src, false);
        let a = s.toks.iter().position(|t| t.is_ident("a")).unwrap();
        let b = s.toks.iter().position(|t| t.is_ident("b")).unwrap();
        let more = s.toks.iter().position(|t| t.is_ident("more")).unwrap();
        assert!(!s.in_test[a]);
        assert!(s.in_test[b]);
        assert!(!s.in_test[more]);
    }

    #[test]
    fn test_attr_marks_single_fn() {
        let src = "#[test]\nfn check() { x(); }\nfn live() { y(); }";
        let s = FileScan::new(src, false);
        let x = s.toks.iter().position(|t| t.is_ident("x")).unwrap();
        let y = s.toks.iter().position(|t| t.is_ident("y")).unwrap();
        assert!(s.in_test[x]);
        assert!(!s.in_test[y]);
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let src = "#[cfg(not(test))]\nmod live { fn f() { x(); } }";
        let s = FileScan::new(src, false);
        let x = s.toks.iter().position(|t| t.is_ident("x")).unwrap();
        assert!(!s.in_test[x]);
    }

    #[test]
    fn enclosing_fn_tracks_nesting() {
        let src = "fn outer() { let c = |q| { q }; inner_call(); }\nfn second() { z(); }";
        let s = FileScan::new(src, false);
        let call = s
            .toks
            .iter()
            .position(|t| t.is_ident("inner_call"))
            .unwrap();
        let z = s.toks.iter().position(|t| t.is_ident("z")).unwrap();
        assert_eq!(s.enclosing_fn(call), Some("outer"));
        assert_eq!(s.enclosing_fn(z), Some("second"));
    }

    #[test]
    fn trait_fn_decl_does_not_open_a_frame() {
        let src = "trait T { fn decl(&self); }\nfn real() { w(); }";
        let s = FileScan::new(src, false);
        let w = s.toks.iter().position(|t| t.is_ident("w")).unwrap();
        assert_eq!(s.enclosing_fn(w), Some("real"));
    }

    #[test]
    fn suppressions_parse_with_and_without_reason() {
        let src = "// saga-lint: allow(hot-alloc) — warm-up only\n\
                   // saga-lint: allow(error-discipline)\n\
                   // saga-lint: allow(a, b) - two rules\n\
                   // saga-lint: nonsense";
        let s = FileScan::new(src, false);
        assert_eq!(s.suppressions.len(), 4);
        assert!(s.suppressions[0].has_reason);
        assert_eq!(s.suppressions[0].rules, ["hot-alloc"]);
        assert!(!s.suppressions[1].has_reason);
        assert_eq!(s.suppressions[2].rules, ["a", "b"]);
        assert!(s.suppressions[2].has_reason);
        assert!(!s.suppressions[3].well_formed);
    }
}
