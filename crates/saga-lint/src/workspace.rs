//! Workspace file discovery: every `.rs` file the lint pass covers, in a
//! deterministic order, classified by how it participates in rule scopes.

use crate::rules::FileKind;
use std::path::{Path, PathBuf};

/// One discovered source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Workspace-relative `/`-separated path (the one diagnostics print).
    pub rel: String,
    /// Scope classification.
    pub kind: FileKind,
}

/// Discovers the lintable files under `root`: the root package's `src/`,
/// `tests/`, and `examples/`, every workspace crate's `src/`, `tests/`, and
/// `benches/`, and the vendored stand-ins' `src/` (scanned for the
/// env-registry rule). Paths containing a `skip` fragment are excluded.
pub fn discover(root: &Path, skip: &[&str]) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for top in ["src", "tests", "examples"] {
        walk(root, &root.join(top), skip, &mut files)?;
    }
    for group in ["crates", "vendor"] {
        let dir = root.join(group);
        if !dir.is_dir() {
            continue;
        }
        for member in sorted_entries(&dir)? {
            for sub in ["src", "tests", "benches"] {
                walk(root, &member.join(sub), skip, &mut files)?;
            }
        }
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn sorted_entries(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, skip: &[&str], out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let rel = relativize(root, &path);
        if skip.iter().any(|s| rel.contains(s)) {
            continue;
        }
        if path.is_dir() {
            walk(root, &path, skip, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let kind = classify(&rel);
            out.push(SourceFile {
                abs: path,
                rel,
                kind,
            });
        }
    }
    Ok(())
}

fn relativize(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut s = String::new();
    for c in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&c.as_os_str().to_string_lossy());
    }
    s
}

/// Scope classification from the relative path alone.
pub fn classify(rel: &str) -> FileKind {
    if rel.starts_with("vendor/") {
        FileKind::Vendor
    } else if rel.split('/').any(|c| c == "tests") {
        FileKind::Test
    } else if rel.split('/').any(|c| c == "benches") {
        FileKind::Bench
    } else if rel.contains("/src/bin/")
        || rel.ends_with("src/main.rs")
        || rel.starts_with("examples/")
    {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_layout() {
        assert_eq!(classify("crates/saga-core/src/kernel.rs"), FileKind::Lib);
        assert_eq!(
            classify("crates/saga-experiments/src/bin/fig4.rs"),
            FileKind::Bin
        );
        assert_eq!(classify("tests/golden_determinism.rs"), FileKind::Test);
        assert_eq!(classify("crates/saga-pisa/tests/x.rs"), FileKind::Test);
        assert_eq!(
            classify("crates/saga-bench/benches/kernel.rs"),
            FileKind::Bench
        );
        assert_eq!(classify("vendor/rayon/src/lib.rs"), FileKind::Vendor);
        assert_eq!(classify("examples/quickstart.rs"), FileKind::Bin);
        assert_eq!(classify("src/lib.rs"), FileKind::Lib);
    }
}
