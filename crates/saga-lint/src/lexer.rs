//! A hand-rolled Rust source lexer with line/column spans.
//!
//! This extends the token-walking approach of the workspace's offline derive
//! macro (`vendor/serde_derive` parses items straight off the
//! `proc_macro::TokenStream`) down one level: here there is no `proc_macro`
//! at all, so the lexer works on raw source text and carries the positions
//! the derive never needed. Comments are emitted as tokens — suppression
//! comments (`// saga-lint: allow(...)`) are part of the language this tool
//! checks — and multi-character operators are left as single-character
//! puncts; the rules match token *sequences* (`Vec :: new`), which keeps the
//! lexer small and the matching explicit.
//!
//! The grammar subset is exactly what real workspace sources need: nested
//! block comments, string/raw-string/byte-string and char literals with
//! escapes, lifetimes vs char literals, numbers with exponents and radix
//! prefixes, and identifiers (including raw `r#ident`).

/// What a token is; the text itself lives in [`Tok::text`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `r#type`).
    Ident,
    /// A lifetime such as `'a` (text excludes the quote).
    Lifetime,
    /// Numeric literal, any radix, including suffix (`0xCE11`, `1e-6`, `3u64`).
    Num,
    /// String literal of any flavor; [`Tok::text`] is the *unquoted* value
    /// for ordinary strings and the raw body for raw strings.
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// `// ...` comment, text excludes the newline.
    LineComment,
    /// `/* ... */` comment (possibly nested), full text.
    BlockComment,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for per-kind conventions).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Tok {
    /// True for comment tokens, which the structural scan skips.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// True if this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    /// True if this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a token stream. Unterminated literals and comments lex
/// as much as they can and stop at end of input — the linter reports on what
/// it saw rather than refusing the file.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor::new(src);
    let mut toks = Vec::new();
    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' {
            cur.bump();
            match cur.peek() {
                Some('/') => {
                    let mut text = String::from("/");
                    while let Some(ch) = cur.peek() {
                        if ch == '\n' {
                            break;
                        }
                        text.push(ch);
                        cur.bump();
                    }
                    toks.push(Tok {
                        kind: TokKind::LineComment,
                        text,
                        line,
                        col,
                    });
                }
                Some('*') => {
                    cur.bump();
                    let mut text = String::from("/*");
                    let mut depth = 1u32;
                    while depth > 0 {
                        match cur.bump() {
                            Some('*') if cur.peek() == Some('/') => {
                                cur.bump();
                                text.push_str("*/");
                                depth -= 1;
                            }
                            Some('/') if cur.peek() == Some('*') => {
                                cur.bump();
                                text.push_str("/*");
                                depth += 1;
                            }
                            Some(ch) => text.push(ch),
                            None => break,
                        }
                    }
                    toks.push(Tok {
                        kind: TokKind::BlockComment,
                        text,
                        line,
                        col,
                    });
                }
                _ => toks.push(Tok {
                    kind: TokKind::Punct,
                    text: "/".into(),
                    line,
                    col,
                }),
            }
            continue;
        }
        if let Some(tok) = lex_string_like(&mut cur, line, col) {
            toks.push(tok);
            continue;
        }
        if c == '\'' {
            toks.push(lex_quote(&mut cur, line, col));
            continue;
        }
        if c.is_ascii_digit() {
            toks.push(lex_number(&mut cur, line, col));
            continue;
        }
        if is_ident_start(c) {
            let mut text = String::new();
            while let Some(ch) = cur.peek() {
                if is_ident_continue(ch) {
                    text.push(ch);
                    cur.bump();
                } else {
                    break;
                }
            }
            // raw identifier `r#ident`: keep the unprefixed name so rules
            // compare against what the code means, not how it spells it
            if text == "r" && cur.peek() == Some('#') {
                let mut ahead = cur.chars.clone();
                ahead.next();
                if ahead.peek().is_some_and(|&ch| is_ident_start(ch)) {
                    cur.bump();
                    text.clear();
                    while let Some(ch) = cur.peek() {
                        if is_ident_continue(ch) {
                            text.push(ch);
                            cur.bump();
                        } else {
                            break;
                        }
                    }
                }
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
                col,
            });
            continue;
        }
        cur.bump();
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
            col,
        });
    }
    toks
}

/// Lexes string-family literals that start with an `r`/`b` prefix or a bare
/// `"`. Returns `None` when the cursor is not at one (the caller then
/// treats the prefix letter as a plain identifier start).
fn lex_string_like(cur: &mut Cursor, line: u32, col: u32) -> Option<Tok> {
    let c = cur.peek()?;
    if c == '"' {
        cur.bump();
        return Some(finish_plain_string(cur, line, col));
    }
    if c != 'r' && c != 'b' {
        return None;
    }
    // Look ahead without consuming: the prefix only belongs to a literal if
    // it is followed by the right combination of `r`/`#`/quote characters.
    let mut ahead = cur.chars.clone();
    ahead.next(); // the prefix char
    match c {
        'b' => match ahead.peek() {
            Some('"') => {
                cur.bump();
                cur.bump();
                Some(finish_plain_string(cur, line, col))
            }
            Some('\'') => {
                cur.bump(); // the `b`; lex_quote consumes the quote itself
                Some(lex_quote(cur, line, col))
            }
            Some('r') => {
                ahead.next();
                matches!(ahead.peek(), Some('"' | '#')).then(|| {
                    cur.bump();
                    cur.bump();
                    finish_raw_string(cur, line, col)
                })
            }
            _ => None,
        },
        'r' => {
            let starts_raw = match ahead.peek() {
                Some('"') => true,
                Some('#') => raw_string_follows(ahead.clone()),
                _ => false,
            };
            starts_raw.then(|| {
                cur.bump();
                finish_raw_string(cur, line, col)
            })
        }
        _ => None,
    }
}

/// After `r` and zero consumed `#`s, does a raw string actually follow?
/// Distinguishes `r#"…"#` (raw string) from `r#ident` (raw identifier).
fn raw_string_follows(mut ahead: std::iter::Peekable<std::str::Chars>) -> bool {
    while ahead.peek() == Some(&'#') {
        ahead.next();
    }
    ahead.peek() == Some(&'"')
}

fn finish_plain_string(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    while let Some(ch) = cur.bump() {
        match ch {
            '"' => break,
            '\\' => {
                // keep escapes undecoded; rules only need ASCII names intact
                text.push('\\');
                if let Some(esc) = cur.bump() {
                    text.push(esc);
                }
            }
            _ => text.push(ch),
        }
    }
    Tok {
        kind: TokKind::Str,
        text,
        line,
        col,
    }
}

fn finish_raw_string(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let mut hashes = 0usize;
    while cur.peek() == Some('#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    let mut text = String::new();
    'outer: while let Some(ch) = cur.bump() {
        if ch == '"' {
            // need exactly `hashes` following '#' to close
            let mut ahead = cur.chars.clone();
            for _ in 0..hashes {
                if ahead.next() != Some('#') {
                    text.push('"');
                    continue 'outer;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
        text.push(ch);
    }
    Tok {
        kind: TokKind::Str,
        text,
        line,
        col,
    }
}

/// At a `'`: a lifetime (`'a`) or a char literal (`'x'`, `'\n'`).
fn lex_quote(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    cur.bump(); // the quote
    let mut ahead = cur.chars.clone();
    let first = ahead.next();
    if let Some(f) = first {
        if is_ident_start(f) {
            // consume the identifier; if it is NOT followed by a closing
            // quote this was a lifetime, otherwise a char like 'a'
            let mut name = String::new();
            while let Some(&ch) = ahead.peek() {
                if is_ident_continue(ch) {
                    name.push(ch);
                    ahead.next();
                } else {
                    break;
                }
            }
            if ahead.peek() != Some(&'\'') {
                cur.bump(); // first ident char
                for _ in 1..name.len() {
                    cur.bump();
                }
                let mut text = f.to_string();
                text.push_str(&name);
                return Tok {
                    kind: TokKind::Lifetime,
                    text,
                    line,
                    col,
                };
            }
        }
    }
    // char literal: consume up to the closing quote, honoring escapes
    let mut text = String::new();
    while let Some(ch) = cur.bump() {
        match ch {
            '\'' => break,
            '\\' => {
                text.push('\\');
                if let Some(esc) = cur.bump() {
                    text.push(esc);
                }
            }
            _ => text.push(ch),
        }
    }
    Tok {
        kind: TokKind::Char,
        text,
        line,
        col,
    }
}

fn lex_number(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    while let Some(ch) = cur.peek() {
        if ch.is_alphanumeric() || ch == '_' {
            text.push(ch);
            cur.bump();
            // exponent sign: `1e-6`, `2.5E+3`
            if (ch == 'e' || ch == 'E')
                && !text.starts_with("0x")
                && matches!(cur.peek(), Some('+' | '-'))
            {
                let mut ahead = cur.chars.clone();
                ahead.next();
                if ahead.peek().is_some_and(|d| d.is_ascii_digit()) {
                    text.push(cur.bump().expect("peeked sign"));
                }
            }
        } else if ch == '.' {
            // fractional part only if a digit follows — `0..4` stays a range
            let mut ahead = cur.chars.clone();
            ahead.next();
            if ahead.peek().is_some_and(|d| d.is_ascii_digit()) && !text.contains('.') {
                text.push('.');
                cur.bump();
            } else {
                break;
            }
        } else {
            break;
        }
    }
    Tok {
        kind: TokKind::Num,
        text,
        line,
        col,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_positions() {
        let toks = lex("fn main() {\n    x.y\n}");
        assert!(toks[0].is_ident("fn"));
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        let dot = toks.iter().find(|t| t.is_punct('.')).unwrap();
        assert_eq!((dot.line, dot.col), (2, 6));
    }

    #[test]
    fn comments_are_tokens() {
        let toks = kinds("a // saga-lint: allow(x) — why\nb /* c /* nested */ d */ e");
        assert_eq!(toks[1].0, TokKind::LineComment);
        assert!(toks[1].1.contains("saga-lint"));
        assert_eq!(toks[3].0, TokKind::BlockComment);
        assert!(toks[3].1.contains("nested"));
        assert_eq!(toks[4].1, "e");
    }

    #[test]
    fn string_flavors_do_not_swallow_code() {
        let toks =
            kinds(r####"let a = "x\"y"; let b = r#"raw "inner" body"#; let c = b"bytes";"####);
        let strs: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Str)
            .map(|(_, s)| s)
            .collect();
        assert_eq!(strs.len(), 3);
        assert!(strs[1].contains("raw \"inner\" body"));
        assert_eq!(toks.last().unwrap().1, ";");
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn raw_identifiers_unprefix() {
        let toks = lex("let r#type = 1;");
        assert!(toks[1].is_ident("type"));
    }

    #[test]
    fn numbers_with_ranges_and_exponents() {
        let toks = kinds("0..4 1.5e-6 0xCE11 3u64");
        let nums: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Num)
            .map(|(_, s)| s)
            .collect();
        assert_eq!(nums, ["0", "4", "1.5e-6", "0xCE11", "3u64"]);
    }
}
