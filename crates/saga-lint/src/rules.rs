//! The rule set: token-sequence matchers over a [`FileScan`], scoped by the
//! [`Config`], with inline-suppression filtering.
//!
//! Four families, matching ARCHITECTURE.md's "Machine-checked invariants":
//!
//! * **`nondet-collection` / `nondet-time` / `nondet-rng`** — determinism:
//!   result-producing code must not consult hash-order collections, wall
//!   clocks, or RNGs whose seed is not plumbed from a config/`derive_seed`
//!   stream.
//! * **`hot-alloc`** — deny-listed hot paths (the kernel, the incremental
//!   path, scheduler `run` entry points, the annealer inner loop) must not
//!   allocate: `Vec::new`, `vec!`, `.to_vec()`, `.collect()`, `.clone()`,
//!   `Box::new`, `format!`.
//! * **`error-discipline`** — IO/checkpoint/parse-path library code must
//!   propagate errors, not `unwrap()`/`expect()`/`panic!`.
//! * **`env-registry`** — every literal `env::var("NAME")` read must be
//!   declared in the registry table (cross-checked in `lib.rs`).
//!
//! A finding is silenced by `// saga-lint: allow(<rule>) — <reason>` on the
//! same line or the line directly above; the reason is mandatory and
//! malformed suppressions are findings themselves (`suppression-*`).

use crate::concurrency::{self, ConcurrencyScan};
use crate::config::{Config, RULES};
use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::scan::{FileScan, Suppression};

/// How a scanned file participates in the rule scopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source in a workspace crate (or the root `src/`).
    Lib,
    /// A binary (`src/bin/*.rs`, `src/main.rs`, `examples/*.rs`).
    Bin,
    /// An integration-test file (any `tests/` directory).
    Test,
    /// A bench target (`benches/`).
    Bench,
    /// Vendored dependency source (`vendor/*`).
    Vendor,
}

/// A literal environment read found in source, for the registry
/// cross-check.
#[derive(Debug, Clone)]
pub struct EnvRead {
    /// The variable name read.
    pub name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based position of the `var`/`var_os` call.
    pub line: u32,
    /// Column of the call.
    pub col: u32,
}

/// Everything one file contributes to the run.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Findings that survived suppression (plus suppression meta-findings).
    pub findings: Vec<Finding>,
    /// Literal env reads, for the registry cross-check.
    pub env_reads: Vec<EnvRead>,
    /// Count of findings silenced by valid suppressions.
    pub suppressed: usize,
    /// The file's suppressions (the cross-checks consult and mark them
    /// later; unused ones then become findings).
    pub suppressions: Vec<Suppression>,
    /// Concurrency facts (atomic/lock declarations and uses) for the
    /// registry cross-checks in `lib.rs`.
    pub concurrency: ConcurrencyScan,
}

/// Lints one file. `rel` is the workspace-relative `/`-separated path.
pub fn lint_file(rel: &str, kind: FileKind, scan: &FileScan, cfg: &Config) -> FileOutcome {
    let determinism = kind != FileKind::Vendor
        && kind != FileKind::Test
        && kind != FileKind::Bench
        && Config::matches(&cfg.result_producing, rel);
    let error_discipline = kind == FileKind::Lib && Config::matches(&cfg.error_paths, rel);
    let hot_entries = if kind == FileKind::Vendor {
        Vec::new()
    } else {
        cfg.hot_entries(rel)
    };

    let mut raw: Vec<Finding> = Vec::new();
    let mut env_reads = Vec::new();
    let finding = |rule: &'static str, t: &crate::lexer::Tok, message: String| Finding {
        file: rel.to_string(),
        line: t.line,
        col: t.col,
        rule,
        message,
    };

    // significant (non-comment) token indices, for sequence matching
    let sig: Vec<usize> = (0..scan.toks.len())
        .filter(|&i| !scan.toks[i].is_comment())
        .collect();
    let tok = |p: usize| &scan.toks[sig[p]];

    for p in 0..sig.len() {
        let i = sig[p];
        let t = &scan.toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let in_test = scan.in_test[i];
        let prev_is = |c: char| p > 0 && tok(p - 1).is_punct(c);
        let next_is = |c: char| p + 1 < sig.len() && tok(p + 1).is_punct(c);

        // ---- env-registry: literal env reads, any file, test code included
        if (t.text == "var" || t.text == "var_os") && next_is('(') && p + 2 < sig.len() {
            let arg = tok(p + 2);
            if arg.kind == TokKind::Str && crate::registry::is_env_name(&arg.text) {
                env_reads.push(EnvRead {
                    name: arg.text.clone(),
                    file: rel.to_string(),
                    line: t.line,
                    col: t.col,
                });
            }
        }
        if in_test {
            continue;
        }

        // ---- determinism family
        if determinism {
            match t.text.as_str() {
                "HashMap" | "HashSet" => raw.push(finding(
                    "nondet-collection",
                    t,
                    format!(
                        "`{}` in result-producing code: iteration order is \
                         nondeterministic — use BTreeMap/BTreeSet or sorted \
                         iteration, or suppress with a determinism argument",
                        t.text
                    ),
                )),
                "SystemTime" | "Instant" => raw.push(finding(
                    "nondet-time",
                    t,
                    format!(
                        "`{}` read in result-producing code: wall-clock values \
                         must never reach a result or checkpoint",
                        t.text
                    ),
                )),
                "from_entropy" | "thread_rng" => raw.push(finding(
                    "nondet-rng",
                    t,
                    format!(
                        "`{}` constructs an entropy-seeded RNG in \
                         result-producing code — derive the stream from a \
                         configured seed (`derive_seed`)",
                        t.text
                    ),
                )),
                "seed_from_u64" | "from_seed" | "from_rng"
                    if next_is('(') && !seed_is_plumbed(scan, &sig, p + 1) =>
                {
                    raw.push(finding(
                        "nondet-rng",
                        t,
                        format!(
                            "`{}` with a seed not plumbed from a config or \
                             `derive_seed` stream — hard-coded seeds fork \
                             the workspace's single seeded-stream discipline",
                            t.text
                        ),
                    ));
                }
                _ => {}
            }
        }

        // ---- hot-path allocation
        if !hot_entries.is_empty() {
            let enclosing = scan.enclosing_fn(i);
            let in_hot = hot_entries.iter().any(|h| match h.fns {
                None => true,
                Some(fns) => enclosing.is_some_and(|f| fns.contains(&f)),
            });
            if in_hot {
                let site = enclosing.unwrap_or("<file scope>");
                let alloc: Option<String> = match t.text.as_str() {
                    "new"
                        if p >= 3
                            && tok(p - 1).is_punct(':')
                            && tok(p - 2).is_punct(':')
                            && matches!(tok(p - 3).text.as_str(), "Vec" | "Box" | "String")
                            && tok(p - 3).kind == TokKind::Ident =>
                    {
                        Some(format!("{}::new", tok(p - 3).text))
                    }
                    "vec" | "format" if next_is('!') => Some(format!("{}!", t.text)),
                    "to_vec" | "collect" | "clone" if prev_is('.') => {
                        Some(format!(".{}()", t.text))
                    }
                    _ => None,
                };
                if let Some(what) = alloc {
                    raw.push(finding(
                        "hot-alloc",
                        t,
                        format!(
                            "`{what}` in deny-listed hot path `{site}` — reuse \
                             pooled/scratch buffers, or suppress with a \
                             justification"
                        ),
                    ));
                }
            }
        }

        // ---- error discipline
        if error_discipline {
            match t.text.as_str() {
                "unwrap" | "expect" if prev_is('.') && next_is('(') => raw.push(finding(
                    "error-discipline",
                    t,
                    format!(
                        "`.{}()` in library code on an IO/checkpoint/parse \
                         path — propagate the error (`io::Result`/`?`) or \
                         suppress with an infallibility argument",
                        t.text
                    ),
                )),
                "panic" if next_is('!') => raw.push(finding(
                    "error-discipline",
                    t,
                    "`panic!` in library code on an IO/checkpoint/parse path — \
                     return an error instead"
                        .to_string(),
                )),
                _ => {}
            }
        }
    }

    // ---- concurrency families: local findings join the raw list, the
    // declaration/use facts ride along for the lib.rs cross-checks
    let mut conc = if matches!(kind, FileKind::Test | FileKind::Bench) {
        ConcurrencyScan::default()
    } else {
        concurrency::scan_file(rel, scan, cfg)
    };
    raw.append(&mut conc.findings);

    // ---- suppression filtering + meta findings
    let mut out = FileOutcome {
        suppressions: scan.suppressions.clone(),
        env_reads,
        concurrency: conc,
        ..FileOutcome::default()
    };
    for f in raw {
        if suppressed_at(&mut out.suppressions, f.rule, f.line) {
            out.suppressed += 1;
        } else {
            out.findings.push(f);
        }
    }
    for s in &out.suppressions {
        if !s.well_formed {
            out.findings.push(Finding {
                file: rel.to_string(),
                line: s.line,
                col: s.col,
                rule: "suppression-malformed",
                message: "unrecognized `saga-lint:` comment — expected \
                          `saga-lint: allow(<rule>) — <reason>`"
                    .to_string(),
            });
            continue;
        }
        if !s.has_reason {
            out.findings.push(Finding {
                file: rel.to_string(),
                line: s.line,
                col: s.col,
                rule: "suppression-missing-reason",
                message: "suppression without a reason — the justification is \
                          mandatory: `saga-lint: allow(<rule>) — <reason>`"
                    .to_string(),
            });
        }
        for r in &s.rules {
            if !RULES.contains(&r.as_str()) {
                out.findings.push(Finding {
                    file: rel.to_string(),
                    line: s.line,
                    col: s.col,
                    rule: "suppression-unknown-rule",
                    message: format!(
                        "suppression names unknown rule `{r}` (known: {})",
                        RULES.join(", ")
                    ),
                });
            }
        }
    }
    out
}

/// Is a finding of `rule` at `line` silenced by a valid suppression on the
/// same line (trailing comment) or the line directly above? Marks the
/// matching suppression as used (see `suppression-unused`).
pub fn suppressed_at(sups: &mut [Suppression], rule: &str, line: u32) -> bool {
    for s in sups.iter_mut() {
        if s.well_formed
            && s.has_reason
            && (s.line == line || s.line + 1 == line)
            && s.rules.iter().any(|r| r == rule)
        {
            s.used = true;
            return true;
        }
    }
    false
}

/// Scans the balanced argument list opening at significant position `open`
/// (a `(`): the seed counts as plumbed when some argument identifier is
/// `derive_seed` or mentions `seed` (a `config.seed`/`self.seed` field, a
/// `seed` parameter) — i.e. the value flows from configuration rather than
/// being invented at the call site.
fn seed_is_plumbed(scan: &FileScan, sig: &[usize], open: usize) -> bool {
    let mut depth = 0i32;
    for &i in &sig[open..] {
        let t = &scan.toks[i];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokKind::Ident
            && (t.text == "derive_seed" || t.text.to_ascii_lowercase().contains("seed"))
        {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_src(src: &str, rel: &str, kind: FileKind, cfg: &Config) -> FileOutcome {
        let scan = FileScan::new(src, matches!(kind, FileKind::Test | FileKind::Bench));
        lint_file(rel, kind, &scan, cfg)
    }

    fn test_cfg() -> Config {
        let mut cfg = Config::workspace();
        cfg.result_producing = vec!["det/"];
        cfg.error_paths = vec!["io/lib.rs"];
        cfg.hot_paths = vec![
            crate::config::HotPath {
                path: "hot/whole.rs",
                fns: None,
            },
            crate::config::HotPath {
                path: "hot/part.rs",
                fns: Some(&["inner"]),
            },
        ];
        cfg
    }

    #[test]
    fn hashmap_flagged_only_in_scope_and_outside_tests() {
        let cfg = test_cfg();
        let src = "use std::collections::HashMap;\n\
                   #[cfg(test)]\nmod tests { fn t() { let h: HashMap<u8,u8> = HashMap::new(); } }";
        let out = lint_src(src, "det/lib.rs", FileKind::Lib, &cfg);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert_eq!(out.findings[0].rule, "nondet-collection");
        let out = lint_src(src, "other/lib.rs", FileKind::Lib, &cfg);
        assert!(out.findings.is_empty());
    }

    #[test]
    fn rng_seed_plumbing_heuristic() {
        let cfg = test_cfg();
        let bad = "fn f() { let r = StdRng::seed_from_u64(42); }";
        let good = "fn f(cfg: &C) { let r = StdRng::seed_from_u64(derive_seed(cfg.seed, 1)); }";
        let field = "fn f(&self) { let r = StdRng::seed_from_u64(self.seed); }";
        assert_eq!(
            lint_src(bad, "det/lib.rs", FileKind::Lib, &cfg).findings[0].rule,
            "nondet-rng"
        );
        assert!(lint_src(good, "det/lib.rs", FileKind::Lib, &cfg)
            .findings
            .is_empty());
        assert!(lint_src(field, "det/lib.rs", FileKind::Lib, &cfg)
            .findings
            .is_empty());
    }

    #[test]
    fn hot_alloc_fn_scoping() {
        let cfg = test_cfg();
        let src = "fn inner() { let v = Vec::new(); }\nfn outer() { let v = Vec::new(); }";
        let out = lint_src(src, "hot/part.rs", FileKind::Lib, &cfg);
        assert_eq!(out.findings.len(), 1);
        assert!(out.findings[0].message.contains("`inner`"));
        let out = lint_src(src, "hot/whole.rs", FileKind::Lib, &cfg);
        assert_eq!(out.findings.len(), 2);
    }

    #[test]
    fn hot_alloc_token_shapes() {
        let cfg = test_cfg();
        let src = "fn f(x: &[u8]) { let a = vec![1]; let b = x.to_vec(); \
                   let c: Vec<u8> = x.iter().copied().collect(); let d = b.clone(); \
                   let e = format!(\"x\"); let g = Box::new(1); }";
        let out = lint_src(src, "hot/whole.rs", FileKind::Lib, &cfg);
        assert_eq!(out.findings.len(), 6, "{:?}", out.findings);
    }

    #[test]
    fn error_discipline_and_bin_exemption() {
        let cfg = test_cfg();
        let src = "fn f() { let x = g().unwrap(); h().expect(\"msg\"); panic!(\"no\"); }";
        let out = lint_src(src, "io/lib.rs", FileKind::Lib, &cfg);
        assert_eq!(out.findings.len(), 3);
        let out = lint_src(src, "io/lib.rs", FileKind::Bin, &cfg);
        assert!(out.findings.is_empty());
        // unwrap_or_else is a different identifier: not flagged
        let ok = "fn f() { let x = g().unwrap_or_else(|e| e.into_inner()); }";
        assert!(lint_src(ok, "io/lib.rs", FileKind::Lib, &cfg)
            .findings
            .is_empty());
    }

    #[test]
    fn suppression_silences_and_missing_reason_reports() {
        let cfg = test_cfg();
        let src = "fn f() {\n\
                   // saga-lint: allow(error-discipline) — poisoning is unreachable here\n\
                   let x = g().unwrap();\n\
                   let y = h().unwrap(); // saga-lint: allow(error-discipline)\n\
                   }";
        let out = lint_src(src, "io/lib.rs", FileKind::Lib, &cfg);
        assert_eq!(out.suppressed, 1);
        // surviving: the un-reasoned unwrap finding + the missing-reason meta
        assert_eq!(out.findings.len(), 2, "{:?}", out.findings);
        assert!(out
            .findings
            .iter()
            .any(|f| f.rule == "suppression-missing-reason"));
        assert!(out.findings.iter().any(|f| f.rule == "error-discipline"));
    }

    #[test]
    fn unknown_rule_in_suppression_is_reported() {
        let cfg = test_cfg();
        let src = "// saga-lint: allow(made-up-rule) — because\nfn f() {}";
        let out = lint_src(src, "x/lib.rs", FileKind::Lib, &cfg);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, "suppression-unknown-rule");
    }

    #[test]
    fn env_reads_collected_everywhere_including_tests() {
        let cfg = test_cfg();
        let src = "fn f() { let v = std::env::var(\"SAGA_X\"); }\n\
                   #[cfg(test)] mod t { fn g() { std::env::var_os(\"GOLDEN_REGEN\"); } }";
        let out = lint_src(src, "x/lib.rs", FileKind::Lib, &cfg);
        let names: Vec<&str> = out.env_reads.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["SAGA_X", "GOLDEN_REGEN"]);
        // dynamic reads are skipped
        let dynsrc = "fn f(n: &str) { std::env::var(n); }";
        assert!(lint_src(dynsrc, "x/lib.rs", FileKind::Lib, &cfg)
            .env_reads
            .is_empty());
    }
}
