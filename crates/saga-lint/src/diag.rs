//! Findings, rustc-style rendering, and the JSON report.

use std::fmt;

/// One lint finding at a source position.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule name (one of [`crate::config::RULES`] or a `suppression-*`
    /// meta rule).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // rustc's --message-format=short shape: file:line:col: error[code]: msg
        write!(
            f,
            "{}:{}:{}: error[{}]: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// The result of a full lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived suppression, sorted by (file, line, col).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings silenced by a well-formed, reasoned suppression.
    pub suppressed: usize,
    /// Wall-clock milliseconds the lint pass took (set by the CLI; the
    /// JSON artifact carries it so CI can watch the linter's own cost).
    pub wall_ms: u64,
}

impl Report {
    /// Renders the machine-readable JSON report (hand-emitted: the linter
    /// is dependency-free on purpose).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \"message\": {}}}{}\n",
                json_str(&f.file),
                f.line,
                f.col,
                json_str(f.rule),
                json_str(&f.message),
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"files_scanned\": {},\n  \"suppressed\": {},\n  \"total\": {},\n  \"wall_ms\": {}\n}}\n",
            self.files_scanned,
            self.suppressed,
            self.findings.len(),
            self.wall_ms
        ));
        out
    }
}

/// JSON string literal with the escapes the report can actually contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_rustc_short_style() {
        let f = Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            rule: "hot-alloc",
            message: "allocation".into(),
        };
        assert_eq!(
            f.to_string(),
            "crates/x/src/lib.rs:3:9: error[hot-alloc]: allocation"
        );
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_json_shape() {
        let mut r = Report {
            files_scanned: 2,
            ..Report::default()
        };
        r.findings.push(Finding {
            file: "f.rs".into(),
            line: 1,
            col: 1,
            rule: "nondet-time",
            message: "m".into(),
        });
        let j = r.to_json();
        assert!(j.contains("\"files_scanned\": 2"));
        assert!(j.contains("\"rule\": \"nondet-time\""));
        assert!(j.contains("\"total\": 1"));
    }
}
