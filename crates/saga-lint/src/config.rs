//! The lint configuration: which rules apply where.
//!
//! Config is code, not a parsed file — the deny lists change only when the
//! architecture changes, reviewers diff them like any other source, and the
//! linter needs no config-format parser of its own. Paths are matched as
//! `/`-separated suffix-or-prefix substrings of the workspace-relative path.

/// A hot-path deny-list entry: a file (or directory) where allocation is
/// forbidden, optionally narrowed to specific functions.
#[derive(Debug, Clone)]
pub struct HotPath {
    /// Workspace-relative path fragment (`crates/saga-core/src/kernel.rs`
    /// or a directory prefix ending in `/`).
    pub path: &'static str,
    /// `None` = the whole file; `Some` = only inside these functions.
    pub fns: Option<&'static [&'static str]>,
}

/// Full rule configuration for one lint run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates/files whose outputs are result-producing: determinism rules
    /// (`nondet-collection`, `nondet-time`, `nondet-rng`) apply here.
    pub result_producing: Vec<&'static str>,
    /// The hot-path allocation deny list (`hot-alloc`).
    pub hot_paths: Vec<HotPath>,
    /// IO/checkpoint/parse-path files where `unwrap`/`expect`/`panic!` are
    /// forbidden in library code (`error-discipline`).
    pub error_paths: Vec<&'static str>,
    /// Markdown file holding the env-toggle registry table
    /// (`env-registry`), relative to the workspace root. The same file
    /// holds the concurrency tables (`atomics-discipline`,
    /// `lock-discipline`).
    pub registry_doc: &'static str,
    /// Identifiers accepted as runtime feature gates for
    /// `#[target_feature]` call sites (`unsafe-discipline`): a call is
    /// gated when one of these appears earlier in the enclosing function.
    pub feature_gates: Vec<&'static str>,
    /// Path fragments never scanned (fixture corpora, build output).
    pub skip: Vec<&'static str>,
}

impl Config {
    /// The shipped workspace configuration — the rule set ARCHITECTURE.md's
    /// "Machine-checked invariants" section documents.
    pub fn workspace() -> Self {
        Config {
            result_producing: vec![
                "crates/saga-core/src/",
                "crates/saga-schedulers/src/",
                "crates/saga-pisa/src/",
                "crates/saga-experiments/src/engine.rs",
            ],
            hot_paths: vec![
                // the kernel and the incremental path must stay
                // allocation-free everywhere outside warm-up
                HotPath {
                    path: "crates/saga-core/src/kernel.rs",
                    fns: None,
                },
                HotPath {
                    path: "crates/saga-core/src/incremental.rs",
                    fns: None,
                },
                // every scheduler's kernel entry points (the blanket impl
                // derives schedule_into/makespan_into from these)
                HotPath {
                    path: "crates/saga-schedulers/src/",
                    fns: Some(&["run", "run_recorded"]),
                },
                // the shared EFT/insertion helpers those entry points call,
                // including the fused row-kernel sweeps and their scalar
                // fallbacks
                HotPath {
                    path: "crates/saga-schedulers/src/util.rs",
                    fns: Some(&[
                        "best_eft_node",
                        "best_eft_node_scalar",
                        "best_est_node",
                        "earliest_start_insertion",
                        "first_idle_node",
                        "start",
                        "fused_rows",
                        "fused_rows_profitable",
                        "best_node",
                        "best_node_eft",
                        "best_node_est",
                        "note_placed",
                    ]),
                },
                // the annealer inner loop (one iteration = perturb +
                // two scheduler runs; a stray allocation here multiplies
                // by i_max × restarts × cells)
                HotPath {
                    path: "crates/saga-pisa/src/annealer.rs",
                    fns: Some(&["run_annealing", "accept"]),
                },
                // the lockstep batch runtime: the SoA row sweeps and the
                // per-step lane loop run as hot as the scalar annealer
                HotPath {
                    path: "crates/saga-core/src/batch.rs",
                    fns: Some(&["reset_lane", "retire", "advance_live", "lane"]),
                },
                HotPath {
                    path: "crates/saga-pisa/src/lockstep.rs",
                    fns: Some(&["run_steps", "eval_pair"]),
                },
            ],
            error_paths: vec![
                "crates/saga-experiments/src/engine.rs",
                "crates/saga-experiments/src/lib.rs",
                "crates/saga-core/src/instance.rs",
                "crates/saga-pisa/src/library.rs",
            ],
            registry_doc: "ARCHITECTURE.md",
            feature_gates: vec!["wide_kernels", "is_x86_feature_detected"],
            skip: vec!["crates/saga-lint/tests/fixtures/", "/target/"],
        }
    }

    /// Does `rel` (workspace-relative, `/`-separated) match any entry in
    /// `list`? Directory entries (trailing `/`) match by prefix, file
    /// entries by equality.
    pub fn matches(list: &[&str], rel: &str) -> bool {
        list.iter()
            .any(|p| rel == *p || (p.ends_with('/') && rel.starts_with(p)))
    }

    /// The hot-path entries applying to `rel` (possibly several: a
    /// directory-wide entry plus a per-file one).
    pub fn hot_entries<'a>(&'a self, rel: &str) -> Vec<&'a HotPath> {
        self.hot_paths
            .iter()
            .filter(|h| rel == h.path || (h.path.ends_with('/') && rel.starts_with(h.path)))
            .collect()
    }
}

/// All rule names, for suppression validation and docs.
pub const RULES: &[&str] = &[
    "nondet-collection",
    "nondet-time",
    "nondet-rng",
    "hot-alloc",
    "error-discipline",
    "env-registry",
    "atomics-discipline",
    "lock-discipline",
    "unsafe-discipline",
];
