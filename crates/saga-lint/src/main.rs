//! The `saga-lint` CLI: lints the workspace, prints rustc-style
//! diagnostics, optionally writes a JSON report, and exits nonzero on any
//! finding. Run as `cargo run -p saga-lint` (CI runs it with `--json` and
//! uploads the report).

use saga_lint::config::Config;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--root" if i + 1 < args.len() => {
                root = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--json" => {
                // optional path operand; defaults under results/
                if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                    json = Some(PathBuf::from(&args[i + 1]));
                    i += 2;
                } else {
                    json = Some(PathBuf::from("results/saga-lint.json"));
                    i += 1;
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "saga-lint — workspace invariant checker\n\
                     usage: saga-lint [--root <workspace>] [--json [path]]\n\
                     rules: {}",
                    saga_lint::config::RULES.join(", ")
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("saga-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.or_else(|| {
        let cwd = std::env::current_dir().ok()?;
        saga_lint::find_workspace_root(&cwd)
    });
    let Some(root) = root else {
        eprintln!("saga-lint: no workspace root found (pass --root)");
        return ExitCode::from(2);
    };

    let cfg = Config::workspace();
    let started = std::time::Instant::now();
    let mut report = match saga_lint::lint_root(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("saga-lint: IO error while scanning: {e}");
            return ExitCode::from(2);
        }
    };
    report.wall_ms = started.elapsed().as_millis() as u64;

    for f in &report.findings {
        println!("{f}");
    }
    if let Some(json_path) = json {
        let path = if json_path.is_absolute() {
            json_path
        } else {
            root.join(json_path)
        };
        if let Some(dir) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("saga-lint: cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("saga-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("saga-lint: report written to {}", path.display());
    }
    eprintln!(
        "saga-lint: {} files scanned, {} finding(s), {} suppressed, {} ms",
        report.files_scanned,
        report.findings.len(),
        report.suppressed,
        report.wall_ms
    );
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
