//! # saga-lint
//!
//! A workspace-aware static-analysis pass enforcing the source-level
//! invariants every performance PR since the kernel rebuild rests on — the
//! ones `rustc`/`clippy` cannot see because they are *project* contracts,
//! not language contracts:
//!
//! 1. **determinism** (`nondet-collection`, `nondet-time`, `nondet-rng`) —
//!    result-producing crates stay bit-identical for any
//!    `RAYON_NUM_THREADS`, so they must not consult hash-order collections,
//!    wall clocks, or RNG streams that aren't plumbed from configured
//!    seeds;
//! 2. **hot-path allocation** (`hot-alloc`) — the scheduling kernel, the
//!    incremental path, scheduler `run` entry points and the annealer inner
//!    loop stay allocation-free after warm-up;
//! 3. **error discipline** (`error-discipline`) — IO/checkpoint/parse
//!    library paths propagate `io::Error` instead of aborting mid-grid;
//! 4. **env-toggle registry** (`env-registry`) — every literal
//!    `env::var("NAME")` read is declared in ARCHITECTURE.md's registry
//!    table, and every declared toggle is actually read.
//!
//! Violations are silenced only by an inline
//! `// saga-lint: allow(<rule>) — <reason>` with a mandatory reason.
//! See ARCHITECTURE.md → "Machine-checked invariants" for the contract and
//! `cargo run -p saga-lint` for the CI gate.

#![warn(missing_docs)]

pub mod config;
pub mod diag;
pub mod lexer;
pub mod registry;
pub mod rules;
pub mod scan;
pub mod workspace;

use config::Config;
use diag::{Finding, Report};
use rules::{EnvRead, FileKind};
use scan::FileScan;
use std::path::Path;

/// Lints the workspace rooted at `root` under `cfg`. IO errors (unreadable
/// files) surface as errors; lint findings land in the [`Report`].
pub fn lint_root(root: &Path, cfg: &Config) -> std::io::Result<Report> {
    let mut report = Report::default();
    let mut env_reads: Vec<EnvRead> = Vec::new();
    let mut suppressions_by_file = Vec::new();

    for file in workspace::discover(root, &cfg.skip)? {
        let src = std::fs::read_to_string(&file.abs)?;
        let force_test = matches!(file.kind, FileKind::Test | FileKind::Bench);
        let scan = FileScan::new(&src, force_test);
        let outcome = rules::lint_file(&file.rel, file.kind, &scan, cfg);
        report.files_scanned += 1;
        report.suppressed += outcome.suppressed;
        report.findings.extend(outcome.findings);
        env_reads.extend(outcome.env_reads);
        suppressions_by_file.push((file.rel.clone(), outcome.suppressions));
    }

    cross_check_registry(root, cfg, &env_reads, &suppressions_by_file, &mut report)?;

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(report)
}

/// The env-registry cross-check, both directions.
fn cross_check_registry(
    root: &Path,
    cfg: &Config,
    env_reads: &[EnvRead],
    suppressions_by_file: &[(String, Vec<scan::Suppression>)],
    report: &mut Report,
) -> std::io::Result<()> {
    let doc_path = root.join(cfg.registry_doc);
    let doc = match std::fs::read_to_string(&doc_path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    let reg = registry::parse(&doc);
    if !reg.found {
        report.findings.push(Finding {
            file: cfg.registry_doc.to_string(),
            line: 1,
            col: 1,
            rule: "env-registry",
            message: "no `Env-toggle registry` table found — every runtime \
                      env read must be declared there"
                .to_string(),
        });
        return Ok(());
    }
    for read in env_reads {
        if reg.declares(&read.name) {
            continue;
        }
        let sups = suppressions_by_file
            .iter()
            .find(|(f, _)| f == &read.file)
            .map(|(_, s)| s.as_slice())
            .unwrap_or(&[]);
        if rules::suppressed_at(sups, "env-registry", read.line) {
            report.suppressed += 1;
        } else {
            report.findings.push(Finding {
                file: read.file.clone(),
                line: read.line,
                col: read.col,
                rule: "env-registry",
                message: format!(
                    "env read `{}` is not declared in {}'s env-toggle \
                     registry table",
                    read.name, cfg.registry_doc
                ),
            });
        }
    }
    for entry in &reg.entries {
        if !env_reads.iter().any(|r| r.name == entry.name) {
            report.findings.push(Finding {
                file: cfg.registry_doc.to_string(),
                line: entry.line,
                col: 1,
                rule: "env-registry",
                message: format!(
                    "registry declares `{}` but no source file reads it — \
                     remove the stale row or restore the toggle",
                    entry.name
                ),
            });
        }
    }
    Ok(())
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
