//! # saga-lint
//!
//! A workspace-aware static-analysis pass enforcing the source-level
//! invariants every performance PR since the kernel rebuild rests on — the
//! ones `rustc`/`clippy` cannot see because they are *project* contracts,
//! not language contracts:
//!
//! 1. **determinism** (`nondet-collection`, `nondet-time`, `nondet-rng`) —
//!    result-producing crates stay bit-identical for any
//!    `RAYON_NUM_THREADS`, so they must not consult hash-order collections,
//!    wall clocks, or RNG streams that aren't plumbed from configured
//!    seeds;
//! 2. **hot-path allocation** (`hot-alloc`) — the scheduling kernel, the
//!    incremental path, scheduler `run` entry points and the annealer inner
//!    loop stay allocation-free after warm-up;
//! 3. **error discipline** (`error-discipline`) — IO/checkpoint/parse
//!    library paths propagate `io::Error` instead of aborting mid-grid;
//! 4. **env-toggle registry** (`env-registry`) — every literal
//!    `env::var("NAME")` read is declared in ARCHITECTURE.md's registry
//!    table, and every declared toggle is actually read;
//! 5. **concurrency protocols** (`atomics-discipline`, `lock-discipline`,
//!    `unsafe-discipline`) — every atomic binding and its literal
//!    `Ordering::X` uses must match ARCHITECTURE.md's "Atomic protocol
//!    registry", every `Mutex` must be ranked in the "Lock-order registry"
//!    (nested acquisitions ascend in rank; `.lock().unwrap()` yields to
//!    the poison-recovery idiom), and every `unsafe` block/fn carries a
//!    SAFETY justification with `#[target_feature]` calls behind runtime
//!    gates. See `crate::concurrency`.
//!
//! Violations are silenced only by an inline
//! `// saga-lint: allow(<rule>) — <reason>` with a mandatory reason; a
//! valid suppression that silences nothing is itself a finding
//! (`suppression-unused`).
//! See ARCHITECTURE.md → "Machine-checked invariants" for the contract and
//! `cargo run -p saga-lint` for the CI gate.

#![warn(missing_docs)]

pub mod concurrency;
pub mod config;
pub mod diag;
pub mod lexer;
pub mod registry;
pub mod rules;
pub mod scan;
pub mod workspace;

use config::Config;
use diag::{Finding, Report};
use rules::{EnvRead, FileKind};
use scan::{FileScan, Suppression};
use std::path::Path;

/// Lints the workspace rooted at `root` under `cfg`. IO errors (unreadable
/// files) surface as errors; lint findings land in the [`Report`].
pub fn lint_root(root: &Path, cfg: &Config) -> std::io::Result<Report> {
    let mut report = Report::default();
    let mut env_reads: Vec<EnvRead> = Vec::new();
    let mut suppressions_by_file: Vec<(String, Vec<Suppression>)> = Vec::new();
    let mut conc_by_file: Vec<(String, concurrency::ConcurrencyScan)> = Vec::new();

    for file in workspace::discover(root, &cfg.skip)? {
        let src = std::fs::read_to_string(&file.abs)?;
        let force_test = matches!(file.kind, FileKind::Test | FileKind::Bench);
        let scan = FileScan::new(&src, force_test);
        let outcome = rules::lint_file(&file.rel, file.kind, &scan, cfg);
        report.files_scanned += 1;
        report.suppressed += outcome.suppressed;
        report.findings.extend(outcome.findings);
        env_reads.extend(outcome.env_reads);
        suppressions_by_file.push((file.rel.clone(), outcome.suppressions));
        conc_by_file.push((file.rel.clone(), outcome.concurrency));
    }

    let doc = match std::fs::read_to_string(root.join(cfg.registry_doc)) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    cross_check_registry(
        cfg,
        &doc,
        &env_reads,
        &mut suppressions_by_file,
        &mut report,
    );
    cross_check_concurrency(
        cfg,
        &doc,
        &conc_by_file,
        &mut suppressions_by_file,
        &mut report,
    );
    report_unused_suppressions(&suppressions_by_file, &mut report);

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(report)
}

/// Marks + tests suppression of (`rule`, `line`) in `file`, bumping the
/// suppressed counter; the workspace-level cross-checks route their
/// findings through this so inline suppressions keep working for them.
fn suppress_or_push(
    suppressions_by_file: &mut [(String, Vec<Suppression>)],
    report: &mut Report,
    f: Finding,
) {
    let silenced = suppressions_by_file
        .iter_mut()
        .find(|(file, _)| file == &f.file)
        .is_some_and(|(_, sups)| rules::suppressed_at(sups, f.rule, f.line));
    if silenced {
        report.suppressed += 1;
    } else {
        report.findings.push(f);
    }
}

/// The env-registry cross-check, both directions.
fn cross_check_registry(
    cfg: &Config,
    doc: &str,
    env_reads: &[EnvRead],
    suppressions_by_file: &mut [(String, Vec<Suppression>)],
    report: &mut Report,
) {
    let reg = registry::parse(doc);
    if !reg.found {
        report.findings.push(Finding {
            file: cfg.registry_doc.to_string(),
            line: 1,
            col: 1,
            rule: "env-registry",
            message: "no `Env-toggle registry` table found — every runtime \
                      env read must be declared there"
                .to_string(),
        });
        return;
    }
    for read in env_reads {
        if reg.declares(&read.name) {
            continue;
        }
        suppress_or_push(
            suppressions_by_file,
            report,
            Finding {
                file: read.file.clone(),
                line: read.line,
                col: read.col,
                rule: "env-registry",
                message: format!(
                    "env read `{}` is not declared in {}'s env-toggle \
                     registry table",
                    read.name, cfg.registry_doc
                ),
            },
        );
    }
    for entry in &reg.entries {
        if !env_reads.iter().any(|r| r.name == entry.name) {
            report.findings.push(Finding {
                file: cfg.registry_doc.to_string(),
                line: entry.line,
                col: 1,
                rule: "env-registry",
                message: format!(
                    "registry declares `{}` but no source file reads it — \
                     remove the stale row or restore the toggle",
                    entry.name
                ),
            });
        }
    }
}

/// The concurrency cross-checks: atomic and lock declarations against the
/// ARCHITECTURE.md registry tables (both directions), literal ordering
/// uses against each atomic's declared protocol, and nested lock
/// acquisitions against the declared rank order.
fn cross_check_concurrency(
    cfg: &Config,
    doc: &str,
    conc_by_file: &[(String, concurrency::ConcurrencyScan)],
    suppressions_by_file: &mut [(String, Vec<Suppression>)],
    report: &mut Report,
) {
    let reg = registry::parse_concurrency(doc);
    let any_atomics = conc_by_file
        .iter()
        .any(|(_, c)| !c.atomic_decls.is_empty() || !c.atomic_uses.is_empty());
    let any_locks = conc_by_file.iter().any(|(_, c)| !c.lock_decls.is_empty());
    if any_atomics && !reg.atomics_found {
        report.findings.push(Finding {
            file: cfg.registry_doc.to_string(),
            line: 1,
            col: 1,
            rule: "atomics-discipline",
            message: "workspace declares atomics but no `Atomic protocol \
                      registry` table found — declare each atomic's \
                      protocol and allowed orderings there"
                .to_string(),
        });
    }
    if any_locks && !reg.locks_found {
        report.findings.push(Finding {
            file: cfg.registry_doc.to_string(),
            line: 1,
            col: 1,
            rule: "lock-discipline",
            message: "workspace declares mutexes but no `Lock-order \
                      registry` table found — declare each lock's \
                      acquisition rank there"
                .to_string(),
        });
    }

    for (file, c) in conc_by_file {
        if reg.atomics_found {
            for d in &c.atomic_decls {
                if reg.atomic(&d.name, file).is_none() {
                    suppress_or_push(
                        suppressions_by_file,
                        report,
                        Finding {
                            file: file.clone(),
                            line: d.line,
                            col: d.col,
                            rule: "atomics-discipline",
                            message: format!(
                                "atomic `{}` is not declared in {}'s atomic \
                                 protocol registry — add a row naming its \
                                 protocol and allowed `op(Ordering)` set",
                                d.name, cfg.registry_doc
                            ),
                        },
                    );
                }
            }
            for u in &c.atomic_uses {
                match reg.atomic(&u.receiver, file) {
                    None => suppress_or_push(
                        suppressions_by_file,
                        report,
                        Finding {
                            file: file.clone(),
                            line: u.line,
                            col: u.col,
                            rule: "atomics-discipline",
                            message: format!(
                                "`{}.{}(Ordering::{})` on an atomic with no \
                                 row in {}'s atomic protocol registry",
                                u.receiver, u.method, u.ordering, cfg.registry_doc
                            ),
                        },
                    ),
                    Some(row) => {
                        let allowed = row.ops.iter().any(|(m, ords)| {
                            m == &u.method && ords.iter().any(|o| o == &u.ordering)
                        });
                        if !allowed {
                            let declared: Vec<String> = row
                                .ops
                                .iter()
                                .map(|(m, o)| format!("{m}({})", o.join(", ")))
                                .collect();
                            suppress_or_push(
                                suppressions_by_file,
                                report,
                                Finding {
                                    file: file.clone(),
                                    line: u.line,
                                    col: u.col,
                                    rule: "atomics-discipline",
                                    message: format!(
                                        "`{}.{}(Ordering::{})` is outside \
                                         `{}`'s declared protocol (allowed: \
                                         {}) — fix the ordering or amend the \
                                         registry row with a justification",
                                        u.receiver,
                                        u.method,
                                        u.ordering,
                                        u.receiver,
                                        declared.join(", ")
                                    ),
                                },
                            );
                        }
                    }
                }
            }
        }
        if reg.locks_found {
            for d in &c.lock_decls {
                if reg.lock(&d.name, file).is_none() {
                    suppress_or_push(
                        suppressions_by_file,
                        report,
                        Finding {
                            file: file.clone(),
                            line: d.line,
                            col: d.col,
                            rule: "lock-discipline",
                            message: format!(
                                "mutex `{}` is not declared in {}'s \
                                 lock-order registry — add a ranked row",
                                d.name, cfg.registry_doc
                            ),
                        },
                    );
                }
            }
            for n in &c.nestings {
                if n.outer == n.inner {
                    suppress_or_push(
                        suppressions_by_file,
                        report,
                        Finding {
                            file: file.clone(),
                            line: n.line,
                            col: n.col,
                            rule: "lock-discipline",
                            message: format!(
                                "`{}` locked while a `{}` guard is already \
                                 held — self-deadlock",
                                n.inner, n.outer
                            ),
                        },
                    );
                    continue;
                }
                let (Some(outer), Some(inner)) =
                    (reg.lock(&n.outer, file), reg.lock(&n.inner, file))
                else {
                    continue; // undeclared participants already flagged above
                };
                if outer.rank >= inner.rank {
                    suppress_or_push(
                        suppressions_by_file,
                        report,
                        Finding {
                            file: file.clone(),
                            line: n.line,
                            col: n.col,
                            rule: "lock-discipline",
                            message: format!(
                                "lock-order inversion: `{}` (rank {}) acquired \
                                 while holding `{}` (rank {}) — declared \
                                 acquisition order is strictly ascending rank",
                                n.inner, inner.rank, n.outer, outer.rank
                            ),
                        },
                    );
                }
            }
        }
    }

    // registry → code: stale rows are findings at the table
    for row in &reg.atomics {
        let declared = conc_by_file
            .iter()
            .any(|(f, c)| f == &row.path && c.atomic_decls.iter().any(|d| d.name == row.name));
        if !declared {
            report.findings.push(Finding {
                file: cfg.registry_doc.to_string(),
                line: row.line,
                col: 1,
                rule: "atomics-discipline",
                message: format!(
                    "registry declares atomic `{}` in `{}` but no such \
                     declaration exists — remove the stale row",
                    row.name, row.path
                ),
            });
        }
    }
    for row in &reg.locks {
        let declared = conc_by_file
            .iter()
            .any(|(f, c)| f == &row.path && c.lock_decls.iter().any(|d| d.name == row.name));
        if !declared {
            report.findings.push(Finding {
                file: cfg.registry_doc.to_string(),
                line: row.line,
                col: 1,
                rule: "lock-discipline",
                message: format!(
                    "registry declares mutex `{}` in `{}` but no such \
                     declaration exists — remove the stale row",
                    row.name, row.path
                ),
            });
        }
    }
}

/// After every rule and cross-check has had its chance to consume a
/// suppression, any valid, reasoned, known-rule suppression that silenced
/// nothing is reported: dead suppressions mask real drift.
fn report_unused_suppressions(
    suppressions_by_file: &[(String, Vec<Suppression>)],
    report: &mut Report,
) {
    for (file, sups) in suppressions_by_file {
        for s in sups {
            let rules_known = s.rules.iter().all(|r| config::RULES.contains(&r.as_str()));
            if s.well_formed && s.has_reason && rules_known && !s.used {
                report.findings.push(Finding {
                    file: file.clone(),
                    line: s.line,
                    col: s.col,
                    rule: "suppression-unused",
                    message: format!(
                        "suppression allows `{}` but silenced no finding — \
                         remove it (or the code it excused has drifted)",
                        s.rules.join(", ")
                    ),
                });
            }
        }
    }
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
