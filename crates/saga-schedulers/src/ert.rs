//! ERT — Earliest Ready Task (Lee, Hwang, Chow & Anger 1988).
//!
//! The comparator in the FCP/FLB evaluation. At every step, schedule the
//! ready task whose data becomes available earliest (its *ready* time, not
//! its start or finish time), on the node where that earliest readiness is
//! achieved; ties go to the node finishing the task sooner.
//!
//! Placement is append-only, so the sweep runs on
//! [`util::FrontierSweep`]'s cached data-ready rows: each ready task's row
//! is computed once when it enters the frontier instead of once per
//! `(step, node)` query — bit-identical values, minus the
//! O(ready × nodes × preds) rescans.

use crate::{util, KernelRun};
use saga_core::{Instance, SchedContext};

/// The ERT scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ert;

impl KernelRun for Ert {
    fn kernel_name(&self) -> &'static str {
        "ERT"
    }

    fn run(&self, inst: &Instance, ctx: &mut SchedContext) {
        ctx.reset(inst);
        let n = ctx.task_count();
        let nv = ctx.node_count();
        let fused = util::fused_rows_profitable(nv);
        let mut srow = [0.0f64; util::STACK_NODES];
        let mut frow = [0.0f64; util::STACK_NODES];
        let mut sweep = util::FrontierSweep::new(ctx);
        while ctx.placed_count() < n {
            let mut chosen: Option<(saga_core::TaskId, saga_core::NodeId, f64, f64, f64)> = None;
            for &t in ctx.ready() {
                let ready_row = sweep.row(nv, t);
                if fused {
                    // one branchless compose per task; the selection loop
                    // reads the finished rows instead of recomposing per node
                    sweep.fused_rows(ctx, t, &mut srow[..nv], &mut frow[..nv]);
                }
                for v in 0..nv {
                    let data_ready = ready_row[v];
                    let (s, f) = if fused {
                        (srow[v], frow[v])
                    } else {
                        let s = sweep.start(ctx, t, v);
                        (s, s + ctx.exec_row(t)[v])
                    };
                    let better = match chosen {
                        None => true,
                        Some((_, _, _, cr, cf)) => data_ready < cr || (data_ready == cr && f < cf),
                    };
                    if better {
                        chosen = Some((t, saga_core::NodeId(v as u32), s, data_ready, f));
                    }
                }
            }
            let (t, v, s, _, _) = chosen.expect("ready set cannot be empty in a DAG");
            ctx.place(t, v, s);
            sweep.note_placed(ctx, t);
        }
        sweep.release(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::fixtures;
    use crate::Scheduler;

    #[test]
    fn schedules_are_valid_on_smoke_instances() {
        for inst in fixtures::smoke_instances() {
            let s = Ert.schedule(&inst);
            s.verify(&inst).expect("ERT schedule must be valid");
        }
    }

    #[test]
    fn prefers_task_with_earliest_data() {
        // two children of one parent: the one with the cheap message is
        // ready earlier on a remote node, but both are ready at the parent's
        // finish locally — so readiness ties and the faster finish wins;
        // make the cheap-message child also cheaper to execute
        let mut g = saga_core::TaskGraph::new();
        let p = g.add_task("p", 1.0);
        let cheap = g.add_task("cheap", 0.5);
        let heavy = g.add_task("heavy", 2.0);
        g.add_dependency(p, cheap, 0.1).unwrap();
        g.add_dependency(p, heavy, 10.0).unwrap();
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0, 1.0], 1.0), g);
        let s = Ert.schedule(&inst);
        s.verify(&inst).unwrap();
        assert!(s.assignment(cheap).start <= s.assignment(heavy).start + 1e-9);
    }

    #[test]
    fn single_source_starts_at_zero() {
        let inst = fixtures::fig1();
        let s = Ert.schedule(&inst);
        assert_eq!(s.assignment(saga_core::TaskId(0)).start, 0.0);
    }
}
