//! MCT — Minimum Completion Time (Armstrong, Hensgen & Kidd 1998).
//!
//! Assigns tasks in arbitrary (here: topological, for precedence safety)
//! order to the node with the smallest completion time given previously
//! scheduled tasks — "HEFT without insertion or its priority function", as
//! the paper puts it. Complexity `O(|T|^2 |V|)`.
//!
//! Append-only, so the node selection is one fused
//! [`SchedContext::eft_row_append_into`] pass plus the lowest-index argmin
//! when the row kernels are enabled (`SAGA_NO_EFT_ROW=1` forces the scalar
//! per-node sweep).

use crate::{util, KernelRun};
use saga_core::{DirtyRegion, Instance, RunTrace, SchedContext};

/// The MCT scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mct;

fn mct_loop(ctx: &mut SchedContext) {
    // popping the lowest-id ready task at each step reproduces the
    // smallest-id-tie-break topological order without materializing it
    let n = ctx.task_count();
    while ctx.placed_count() < n {
        let t = ctx.ready()[0];
        let (v, s, _) = util::best_eft_node(ctx, t, false);
        ctx.place(t, v, s);
    }
}

impl KernelRun for Mct {
    fn kernel_name(&self) -> &'static str {
        "MCT"
    }

    fn run(&self, inst: &Instance, ctx: &mut SchedContext) {
        ctx.reset(inst);
        mct_loop(ctx);
    }

    fn run_recorded(
        &self,
        inst: &Instance,
        ctx: &mut SchedContext,
        trace: &mut RunTrace,
        dirty: &DirtyRegion,
    ) {
        ctx.reset(inst);
        ctx.begin_recording();
        util::replay_frontier_prefix(ctx, trace, dirty, false, |_, _| false);
        mct_loop(ctx);
        ctx.take_recording(trace);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::fixtures;
    use crate::Scheduler;

    #[test]
    fn schedules_are_valid_on_smoke_instances() {
        for inst in fixtures::smoke_instances() {
            let s = Mct.schedule(&inst);
            s.verify(&inst).expect("MCT schedule must be valid");
        }
    }

    #[test]
    fn balances_independent_equal_tasks() {
        let mut g = saga_core::TaskGraph::new();
        for i in 0..4 {
            g.add_task(format!("t{i}"), 1.0);
        }
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0, 1.0], 1.0), g);
        let s = Mct.schedule(&inst);
        assert!((s.makespan() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn differs_from_heft_by_lacking_insertion() {
        // An instance where HEFT's gap-filling beats MCT's append-only rule:
        // a data-delayed big task leaves a gap only HEFT exploits.
        let mut g = saga_core::TaskGraph::new();
        let s0 = g.add_task("s", 1.0);
        let big = g.add_task("big", 1.0);
        let small = g.add_task("small", 1.0);
        g.add_dependency(s0, big, 10.0).unwrap();
        g.add_dependency(s0, small, 0.0).unwrap();
        // one fast node, one slow helper node
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0, 0.01], 1.0), g);
        let heft = crate::Heft.schedule(&inst);
        let mct = Mct.schedule(&inst);
        heft.verify(&inst).unwrap();
        mct.verify(&inst).unwrap();
        assert!(heft.makespan() <= mct.makespan() + 1e-9);
    }
}
