//! MinMin (Braun et al. 2001), generalized to precedence constraints.
//!
//! Repeatedly: for every *ready* task compute its minimum completion time
//! (MCT) over all nodes, then schedule the task whose MCT is smallest on the
//! corresponding node. The original formulation targets independent tasks;
//! as in SAGA we apply it to the ready frontier of the DAG. Complexity
//! `O(|T|^2 |V|)`.

use crate::{util, KernelRun};
use saga_core::{DirtyRegion, Instance, RunTrace, SchedContext};

/// The MinMin scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinMin;

/// The shared MinMin/MaxMin selection loop from whatever partial state
/// `ctx` is in: pick the ready task whose best EFT is extremal and place
/// it. Append-only, so the [`util::FrontierSweep`] cache answers every
/// `(start, finish)` from cached data-ready rows.
fn min_max_loop(ctx: &mut SchedContext, sweep: &mut util::FrontierSweep, want_max: bool) {
    let n = ctx.task_count();
    let fused = util::fused_rows_profitable(ctx.node_count());
    while ctx.placed_count() < n {
        let mut chosen = None;
        for &t in ctx.ready() {
            // per-task best node: minimum finish, lower id on ties
            let (v, s, f) = if fused {
                sweep.best_node_eft(ctx, t)
            } else {
                sweep.best_node(ctx, t, |(_, f), (_, bf)| f < bf)
            };
            let better = match chosen {
                None => true,
                Some((_, _, _, bf)) => {
                    if want_max {
                        f > bf
                    } else {
                        f < bf
                    }
                }
            };
            if better {
                chosen = Some((t, v, s, f));
            }
        }
        let (t, v, s, _) = chosen.expect("ready set cannot be empty in a DAG");
        ctx.place(t, v, s);
        sweep.note_placed(ctx, t);
    }
}

/// Shared MinMin/MaxMin sweep (`want_max = false` for MinMin, `true` for
/// MaxMin).
pub(crate) fn min_max_run(inst: &Instance, ctx: &mut SchedContext, want_max: bool) {
    ctx.reset(inst);
    let mut sweep = util::FrontierSweep::new(ctx);
    min_max_loop(ctx, &mut sweep, want_max);
    sweep.release(ctx);
}

/// [`min_max_run`] with trace recording and incremental prefix replay.
/// The selection compares only EFT compositions of *ready* tasks, so the
/// generic frontier stop rule is exact: until a dirty task is ready (or
/// about to be placed), every per-step comparison is bitwise unchanged.
pub(crate) fn min_max_run_recorded(
    inst: &Instance,
    ctx: &mut SchedContext,
    want_max: bool,
    trace: &mut RunTrace,
    dirty: &DirtyRegion,
) {
    ctx.reset(inst);
    ctx.begin_recording();
    util::replay_frontier_prefix(ctx, trace, dirty, true, |_, _| false);
    let mut sweep = util::FrontierSweep::new(ctx);
    min_max_loop(ctx, &mut sweep, want_max);
    sweep.release(ctx);
    ctx.take_recording(trace);
}

impl KernelRun for MinMin {
    fn kernel_name(&self) -> &'static str {
        "MinMin"
    }

    fn run(&self, inst: &Instance, ctx: &mut SchedContext) {
        min_max_run(inst, ctx, false);
    }

    fn run_recorded(
        &self,
        inst: &Instance,
        ctx: &mut SchedContext,
        trace: &mut RunTrace,
        dirty: &DirtyRegion,
    ) {
        min_max_run_recorded(inst, ctx, false, trace, dirty);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::fixtures;
    use crate::Scheduler;

    #[test]
    fn schedules_are_valid_on_smoke_instances() {
        for inst in fixtures::smoke_instances() {
            let s = MinMin.schedule(&inst);
            s.verify(&inst).expect("MinMin schedule must be valid");
        }
    }

    #[test]
    fn schedules_shortest_tasks_first() {
        // independent tasks of increasing cost on one node: MinMin picks the
        // cheapest first, so start times are ordered by cost
        let mut g = saga_core::TaskGraph::new();
        let big = g.add_task("big", 3.0);
        let small = g.add_task("small", 1.0);
        let mid = g.add_task("mid", 2.0);
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0], 1.0), g);
        let s = MinMin.schedule(&inst);
        assert!(s.assignment(small).start < s.assignment(mid).start);
        assert!(s.assignment(mid).start < s.assignment(big).start);
    }

    #[test]
    fn respects_precedence_over_greed() {
        // a cheap task hidden behind an expensive one cannot jump the queue
        let mut g = saga_core::TaskGraph::new();
        let gate = g.add_task("gate", 5.0);
        let cheap = g.add_task("cheap", 0.1);
        g.add_dependency(gate, cheap, 1.0).unwrap();
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0], 1.0), g);
        let s = MinMin.schedule(&inst);
        assert!(s.assignment(cheap).start >= s.assignment(gate).finish - 1e-9);
    }
}
