//! HEFT — Heterogeneous Earliest Finish Time (Topcuoglu, Hariri & Wu 1999).
//!
//! List scheduling in two phases: (1) prioritize tasks by *upward rank* —
//! the task's average execution time plus the largest (average comm +
//! successor rank) over its successors; (2) in rank order, place each task on
//! the node minimizing its earliest finish time, allowed to fill idle gaps
//! (insertion-based policy). Complexity `O(|T|^2 |V|)`.
//!
//! The per-step node selection is [`util::best_eft_node`] with the
//! insertion policy: one batched data-ready row pass per task, per-node gap
//! scans only where the incumbent bound admits a win (the fused row-kernel
//! formulation; `SAGA_NO_EFT_ROW=1` forces the scalar per-node sweep).

use crate::{util, KernelRun};
use saga_core::{DirtyRegion, Instance, RunTrace, SchedContext};

/// The HEFT scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Heft;

/// HEFT's priority list: a topological order stably sorted by descending
/// upward rank. Descending upward rank is a valid topological order when
/// ranks are finite, but infinite ranks (zero-speed networks) compare equal
/// and would collapse the ordering — starting from a topological order and
/// sorting stably keeps precedence order on ties (`total_cmp` keeps the
/// comparator transitive even with infinities).
fn priority_order(ctx: &mut SchedContext, rank: &mut Vec<f64>, order: &mut Vec<saga_core::TaskId>) {
    ctx.upward_ranks_into(rank);
    order.extend_from_slice(ctx.topo_order());
    order.sort_by(|&a, &b| rank[b.index()].total_cmp(&rank[a.index()]));
}

impl KernelRun for Heft {
    fn kernel_name(&self) -> &'static str {
        "HEFT"
    }

    fn run(&self, inst: &Instance, ctx: &mut SchedContext) {
        ctx.reset(inst);
        let mut rank = ctx.take_f64();
        let mut order = ctx.take_tasks();
        priority_order(ctx, &mut rank, &mut order);
        // `sort_by` is stable, so equal ranks keep topological order and
        // every predecessor is placed before its successors.
        for &t in &order {
            let (v, s, _) = util::best_eft_node(ctx, t, true);
            ctx.place(t, v, s);
        }
        ctx.give_f64(rank);
        ctx.give_tasks(order);
    }

    fn run_recorded(
        &self,
        inst: &Instance,
        ctx: &mut SchedContext,
        trace: &mut RunTrace,
        dirty: &DirtyRegion,
    ) {
        ctx.reset(inst);
        let mut rank = ctx.take_f64();
        let mut order = ctx.take_tasks();
        priority_order(ctx, &mut rank, &mut order);
        ctx.begin_recording();
        let n = ctx.task_count();
        let mut k = 0;
        // HEFT places in a statically computed order, so the recorded run
        // can be replayed as long as the fresh priority list agrees with it
        // position by position and the placed task's own inputs (execution
        // row, predecessor edges) are untouched — the EFT sweep then sees
        // bitwise-identical timelines and data-ready times by induction.
        if !dirty.is_full() && trace.matches(n, ctx.node_count()) {
            while k < n {
                let t = order[k];
                if trace.task(k) != t || dirty.contains(t) {
                    break;
                }
                ctx.place(t, trace.node(k), trace.start(k));
                k += 1;
            }
        }
        for &t in &order[k..] {
            let (v, s, _) = util::best_eft_node(ctx, t, true);
            ctx.place(t, v, s);
        }
        ctx.take_recording(trace);
        ctx.give_f64(rank);
        ctx.give_tasks(order);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::fixtures;
    use crate::Scheduler;

    #[test]
    fn schedules_are_valid_on_smoke_instances() {
        for inst in fixtures::smoke_instances() {
            let s = Heft.schedule(&inst);
            s.verify(&inst).expect("HEFT schedule must be valid");
        }
    }

    #[test]
    fn single_task_goes_to_fastest_node() {
        let inst = fixtures::random_instance(4, 1, 3, 0.0);
        let s = Heft.schedule(&inst);
        let a = s.assignment(saga_core::TaskId(0));
        assert_eq!(a.node, inst.network.fastest_node());
        assert_eq!(a.start, 0.0);
    }

    #[test]
    fn chain_on_heterogeneous_nodes_stays_on_fastest() {
        // With free communication HEFT still keeps a chain on the fastest
        // node: EFT there is always lowest.
        let g = saga_core::TaskGraph::chain(&[1.0, 1.0, 1.0], &[0.0, 0.0]);
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0, 4.0], 1.0), g);
        let s = Heft.schedule(&inst);
        for t in inst.graph.tasks() {
            assert_eq!(s.assignment(t).node, saga_core::NodeId(1));
        }
        assert!((s.makespan() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn parallel_tasks_spread_across_nodes() {
        // Two equal independent tasks, two equal nodes: HEFT runs them in
        // parallel, halving the serial makespan.
        let mut g = saga_core::TaskGraph::new();
        g.add_task("a", 1.0);
        g.add_task("b", 1.0);
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0, 1.0], 1.0), g);
        let s = Heft.schedule(&inst);
        assert!((s.makespan() - 1.0).abs() < 1e-12);
        assert_ne!(
            s.assignment(saga_core::TaskId(0)).node,
            s.assignment(saga_core::TaskId(1)).node
        );
    }

    #[test]
    fn insertion_fills_gaps() {
        // b (big) then c (small) scheduled on the same node; a later task can
        // slot into the idle gap left before b's data-delayed start.
        // Construct: source s on node then two children; the higher-rank
        // child leaves a gap the lower-rank child fits into.
        let mut g = saga_core::TaskGraph::new();
        let s0 = g.add_task("s", 1.0);
        let big = g.add_task("big", 4.0);
        let small = g.add_task("small", 1.0);
        g.add_dependency(s0, big, 8.0).unwrap();
        g.add_dependency(s0, small, 0.0).unwrap();
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0, 1.0], 1.0), g);
        let sched = Heft.schedule(&inst);
        sched.verify(&inst).unwrap();
        // small must not wait for big anywhere: with insertion its EFT is <= 2.
        assert!(sched.assignment(small).finish <= 2.0 + 1e-9);
    }

    #[test]
    fn fig1_makespan_matches_hand_trace() {
        let inst = fixtures::fig1();
        let s = Heft.schedule(&inst);
        s.verify(&inst).unwrap();
        // Hand trace (upward ranks order t1, t3, t2, t4): t1,t3 on v3,
        // t2 on v2, t4 back on v3 after waiting for t2's message:
        // start = 2.6333 + 1.3/1.2, finish + 0.8/1.5 ≈ 4.2497.
        // Note this *exceeds* FastestNode's serial 5.9/1.5 ≈ 3.93 — Fig. 1's
        // weak links already make HEFT over-parallelize, foreshadowing the
        // paper's adversarial findings.
        assert!(
            (s.makespan() - 4.2497).abs() < 1e-3,
            "makespan {}",
            s.makespan()
        );
    }
}
