//! WBA — Workflow-Based Application scheduling (Blythe et al. 2005).
//!
//! A greedy randomized scheduler from the scientific-workflow world: at each
//! step it evaluates, for every ready task and every node, how much the
//! placement would increase the current schedule makespan, then samples a
//! placement from a distribution favouring the smallest increases (options
//! are weighted by `I_max - I`, so the least-damaging choices are most
//! likely and the worst choice has weight zero). Complexity at most
//! `O(|T| |D| |V|)` per the paper's observation.
//!
//! The RNG is seeded (default 0xB1) so experiments are reproducible; PISA
//! perturbs instances, not scheduler seeds.
//!
//! Placement is append-only, so every candidate `(start, finish)` comes from
//! [`util::FrontierSweep`]'s cached data-ready rows, and the current
//! makespan is a running max over placed finish times (same fold, same
//! value) instead of an O(|T|) rescan per step — bit-identical decisions
//! and RNG stream, minus the O(ready × nodes × preds) rescans.

use crate::{util, KernelRun};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saga_core::{Instance, SchedContext};

/// The WBA scheduler.
#[derive(Debug, Clone, Copy)]
pub struct Wba {
    /// Seed for the placement-sampling RNG.
    pub seed: u64,
}

impl Default for Wba {
    fn default() -> Self {
        Wba { seed: 0xB1 }
    }
}

impl KernelRun for Wba {
    fn kernel_name(&self) -> &'static str {
        "WBA"
    }

    fn run(&self, inst: &Instance, ctx: &mut SchedContext) {
        ctx.reset(inst);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = ctx.task_count();
        let nv = ctx.node_count();
        let fused = util::fused_rows_profitable(nv);
        let mut srow = [0.0f64; util::STACK_NODES];
        let mut frow = [0.0f64; util::STACK_NODES];
        let mut sweep = util::FrontierSweep::new(ctx);
        // running max over placed finishes == ctx.current_makespan()
        let mut current = 0.0f64;
        // Per-step options, in pooled parallel buffers. Option `i` is
        // (ready task `i / nv`, node `i % nv`) — the ready set is stable
        // while a step's options are built and consumed, so the identity is
        // recovered from the index instead of storing tuples (which would
        // need their own, unpooled allocation).
        let mut starts = ctx.take_f64();
        let mut increases = ctx.take_f64();
        while ctx.placed_count() < n {
            starts.clear();
            increases.clear();
            let mut i_min = f64::INFINITY;
            let mut i_max = f64::NEG_INFINITY;
            for &t in ctx.ready() {
                if fused {
                    // one branchless compose per task; the option loop reads
                    // the finished rows (same bits, same option order, so
                    // the sampling RNG stream is unchanged)
                    sweep.fused_rows(ctx, t, &mut srow[..nv], &mut frow[..nv]);
                }
                for v in 0..nv {
                    let (s, f) = if fused {
                        (srow[v], frow[v])
                    } else {
                        let s = ctx.append_tails()[v].max(sweep.row(nv, t)[v]);
                        (s, s + ctx.exec_row(t)[v])
                    };
                    let increase = (f - current).max(0.0);
                    i_min = i_min.min(increase);
                    i_max = i_max.max(increase);
                    starts.push(s);
                    increases.push(increase);
                }
            }
            let chosen = if !i_min.is_finite() || !i_max.is_finite() || i_max == i_min {
                // uniformly random among options (covers infinite increases
                // on zero-speed networks and the all-equal case)
                rng.gen_range(0..increases.len())
            } else {
                // weight by (I_max - I): zero for the worst, largest for the
                // best; sample proportionally
                let total: f64 = increases
                    .iter()
                    .map(|&i| if i.is_finite() { i_max - i } else { 0.0 })
                    .sum();
                if total <= 0.0 {
                    rng.gen_range(0..increases.len())
                } else {
                    let mut x = rng.gen::<f64>() * total;
                    let mut pick = increases.len() - 1;
                    for (idx, &i) in increases.iter().enumerate() {
                        let w = if i.is_finite() { i_max - i } else { 0.0 };
                        if x < w {
                            pick = idx;
                            break;
                        }
                        x -= w;
                    }
                    pick
                }
            };
            let t = ctx.ready()[chosen / nv];
            ctx.place(t, saga_core::NodeId((chosen % nv) as u32), starts[chosen]);
            sweep.note_placed(ctx, t);
            current = current.max(ctx.finish_time(t));
        }
        ctx.give_f64(starts);
        ctx.give_f64(increases);
        sweep.release(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::fixtures;
    use crate::Scheduler;

    #[test]
    fn schedules_are_valid_on_smoke_instances() {
        for inst in fixtures::smoke_instances() {
            let s = Wba::default().schedule(&inst);
            s.verify(&inst).expect("WBA schedule must be valid");
        }
    }

    #[test]
    fn deterministic_under_a_fixed_seed() {
        let inst = fixtures::random_instance(5, 10, 3, 0.3);
        let a = Wba { seed: 7 }.schedule(&inst);
        let b = Wba { seed: 7 }.schedule(&inst);
        assert_eq!(a.makespan(), b.makespan());
        for t in inst.graph.tasks() {
            assert_eq!(a.assignment(t).node, b.assignment(t).node);
        }
    }

    #[test]
    fn different_seeds_can_differ() {
        let inst = fixtures::random_instance(5, 12, 4, 0.25);
        let makespans: Vec<f64> = (0..8)
            .map(|s| Wba { seed: s }.schedule(&inst).makespan())
            .collect();
        let first = makespans[0];
        assert!(
            makespans.iter().any(|&m| (m - first).abs() > 1e-12),
            "8 seeds all identical is vanishingly unlikely"
        );
    }

    #[test]
    fn favours_low_increase_placements() {
        // a single huge task: placing it on the slow node would blow up the
        // makespan, so the weighting should essentially always avoid it
        let mut g = saga_core::TaskGraph::new();
        let t = g.add_task("t", 100.0);
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[0.01, 1.0], 1.0), g);
        let mut fast = 0;
        for seed in 0..20 {
            let s = Wba { seed }.schedule(&inst);
            if s.assignment(t).node == saga_core::NodeId(1) {
                fast += 1;
            }
        }
        assert!(fast >= 19, "only {fast}/20 runs used the fast node");
    }

    #[test]
    fn handles_zero_speed_networks() {
        let mut g = saga_core::TaskGraph::new();
        g.add_task("a", 1.0);
        g.add_task("b", 1.0);
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[0.0, 0.0], 0.0), g);
        let s = Wba::default().schedule(&inst);
        s.verify(&inst).unwrap();
        assert!(s.makespan().is_infinite());
    }
}
