//! MH — Mapping Heuristic (El-Rewini & Lewis 1990).
//!
//! The comparator Topcuoglu et al. evaluated HEFT/CPoP against; the paper
//! describes it as "similar to HEFT without insertion". Tasks are ordered
//! once by static upward rank, then each is appended (no gap-filling) to the
//! node minimizing its completion time. Implemented here so the repository
//! can reproduce the historical comparisons its Table I cites.

use crate::{util, KernelRun};
use saga_core::{Instance, SchedContext};

/// The Mapping Heuristic scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mh;

impl KernelRun for Mh {
    fn kernel_name(&self) -> &'static str {
        "MH"
    }

    fn run(&self, inst: &Instance, ctx: &mut SchedContext) {
        ctx.reset(inst);
        let mut rank = ctx.take_f64();
        ctx.upward_ranks_into(&mut rank);
        let mut order = ctx.take_tasks();
        order.extend_from_slice(ctx.topo_order());
        order.sort_by(|&a, &b| rank[b.index()].total_cmp(&rank[a.index()]));
        for &t in &order {
            let (v, s, _) = util::best_eft_node(ctx, t, false);
            ctx.place(t, v, s);
        }
        ctx.give_f64(rank);
        ctx.give_tasks(order);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::fixtures;
    use crate::Scheduler;

    #[test]
    fn schedules_are_valid_on_smoke_instances() {
        for inst in fixtures::smoke_instances() {
            let s = Mh.schedule(&inst);
            s.verify(&inst).expect("MH schedule must be valid");
        }
    }

    #[test]
    fn heft_with_insertion_never_loses_to_mh_on_gap_instances() {
        // on an instance with an exploitable gap, HEFT (insertion) <= MH
        let mut g = saga_core::TaskGraph::new();
        let s0 = g.add_task("s", 1.0);
        let big = g.add_task("big", 4.0);
        let small = g.add_task("small", 1.0);
        g.add_dependency(s0, big, 8.0).unwrap();
        g.add_dependency(s0, small, 0.0).unwrap();
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0, 1.0], 1.0), g);
        let heft = crate::Heft.schedule(&inst).makespan();
        let mh = Mh.schedule(&inst).makespan();
        assert!(heft <= mh + 1e-9);
    }

    #[test]
    fn equals_heft_when_no_gaps_exist() {
        // a pure chain leaves no gaps, so insertion cannot help
        let g = saga_core::TaskGraph::chain(&[1.0, 2.0, 3.0], &[0.5, 0.5]);
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0, 2.0], 1.0), g);
        assert_eq!(
            Mh.schedule(&inst).makespan(),
            crate::Heft.schedule(&inst).makespan()
        );
    }
}
