//! GDL — Generalized Dynamic Level scheduling, also known as DLS
//! (Sih & Lee 1993).
//!
//! A list-scheduling variant whose priorities are re-evaluated after every
//! placement. The *static level* `SL(t)` is the largest sum of median
//! execution times along any path from `t` to a sink (no communication).
//! The *dynamic level* of a (task, node) pair is
//!
//! ```text
//! DL(t, v) = SL(t) - max(DA(t, v), TF(v)) + Delta(t, v)
//! ```
//!
//! where `DA` is the data-available time on `v`, `TF` the time `v` frees up,
//! and `Delta(t, v) = median_exec(t) - exec(t, v)` rewards placing `t` on a
//! node that runs it faster than typical. Each step schedules the pair with
//! the maximum dynamic level. Complexity `O(|V|^3 |T|)` per the paper.
//!
//! Placement is append-only (`start = max(DA, TF) >= TF`, the node's tail),
//! so the sweep runs on [`util::FrontierSweep`]'s cached data-ready rows and
//! tails: `DA` is read from the row computed once per frontier admission and
//! `TF` is the cached tail — bit-identical values, minus the
//! O(ready × nodes × preds) rescans that made GDL the slowest sweep.

use crate::{util, KernelRun};
use saga_core::{DirtyRegion, Instance, RunTrace, SchedContext, TaskId};

/// The GDL (DLS) scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gdl;

/// Median of a non-empty slice (averaging the middle pair on even lengths).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

/// Computes GDL's per-task decision inputs — median execution times and
/// static levels — into `levels` as one concatenated row
/// (`[sl..., med_exec...]`), which doubles as the incremental trace's aux
/// row: any bit change in either vector can flip a future selection.
fn levels_into(ctx: &mut SchedContext, levels: &mut Vec<f64>) {
    let n = ctx.task_count();
    let mut xs = ctx.take_f64();
    levels.clear();
    levels.resize(2 * n, 0.0);
    for t in ctx.tasks() {
        xs.clear();
        xs.extend_from_slice(ctx.exec_row(t));
        levels[n + t.index()] = median(&mut xs);
    }
    // static level: longest median-exec path to a sink (no comm)
    for &t in ctx.topo_order().iter().rev() {
        let mut best = 0.0f64;
        for (s, _) in ctx.succs(t) {
            best = best.max(levels[s.index()]);
        }
        levels[t.index()] = levels[n + t.index()] + best;
    }
    ctx.give_f64(xs);
}

/// GDL's selection loop from whatever partial state `ctx` is in.
fn gdl_loop(ctx: &mut SchedContext, sweep: &mut util::FrontierSweep, levels: &[f64]) {
    let n = ctx.task_count();
    let (sl, med_exec) = levels.split_at(n);
    let nv = ctx.node_count();
    // The dynamic-level comparison itself must keep its exact FP expression
    // (`SL - start + delta` is not reassociable), so the row kernels only
    // replace the per-(task, node) start recompose with one fused pass.
    let fused = util::fused_rows_profitable(nv);
    let mut srow = [0.0f64; util::STACK_NODES];
    let mut frow = [0.0f64; util::STACK_NODES];
    while ctx.placed_count() < n {
        let mut chosen: Option<(saga_core::TaskId, saga_core::NodeId, f64, f64)> = None;
        for &t in ctx.ready() {
            let ready_row = sweep.row(nv, t);
            let med = med_exec[t.index()];
            let level = sl[t.index()];
            if fused {
                sweep.fused_rows(ctx, t, &mut srow[..nv], &mut frow[..nv]);
            }
            for (v, &duration) in ctx.exec_row(t).iter().enumerate() {
                let start = if fused {
                    srow[v]
                } else {
                    ready_row[v].max(ctx.append_tails()[v])
                };
                let delta = med - duration;
                let dl = level - start + delta;
                let better = match chosen {
                    None => true,
                    Some((_, _, _, cdl)) => dl > cdl,
                };
                if better {
                    chosen = Some((t, saga_core::NodeId(v as u32), start, dl));
                }
            }
        }
        let (t, v, start, _) = chosen.expect("ready set cannot be empty in a DAG");
        ctx.place(t, v, start);
        sweep.note_placed(ctx, t);
    }
}

impl KernelRun for Gdl {
    fn kernel_name(&self) -> &'static str {
        "GDL"
    }

    fn run(&self, inst: &Instance, ctx: &mut SchedContext) {
        ctx.reset(inst);
        let mut levels = ctx.take_f64();
        levels_into(ctx, &mut levels);
        let mut sweep = util::FrontierSweep::new(ctx);
        gdl_loop(ctx, &mut sweep, &levels);
        sweep.release(ctx);
        ctx.give_f64(levels);
    }

    fn run_recorded(
        &self,
        inst: &Instance,
        ctx: &mut SchedContext,
        trace: &mut RunTrace,
        dirty: &DirtyRegion,
    ) {
        ctx.reset(inst);
        let mut levels = ctx.take_f64();
        levels_into(ctx, &mut levels);
        ctx.begin_recording();
        // like ETF's rank tie-break, GDL's dynamic level folds in per-task
        // static data (static level and median execution time): the replay
        // must additionally stop once a task whose `[sl, med]` bits changed
        // sits in the frontier
        if !dirty.is_full()
            && trace.matches(ctx.task_count(), ctx.node_count())
            && trace.aux().len() == levels.len()
        {
            let n = ctx.task_count();
            let mut changed = ctx.take_tasks();
            for i in 0..n {
                if levels[i].to_bits() != trace.aux()[i].to_bits()
                    || levels[n + i].to_bits() != trace.aux()[n + i].to_bits()
                {
                    changed.push(TaskId(i as u32));
                }
            }
            util::replay_frontier_prefix(ctx, trace, dirty, true, |ctx, _| {
                changed
                    .iter()
                    .any(|&t| !ctx.is_placed(t) && ctx.is_ready(t))
            });
            ctx.give_tasks(changed);
        }
        let mut sweep = util::FrontierSweep::new(ctx);
        gdl_loop(ctx, &mut sweep, &levels);
        sweep.release(ctx);
        ctx.take_recording(trace);
        trace.set_aux(&levels);
        ctx.give_f64(levels);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::fixtures;
    use crate::Scheduler;

    #[test]
    fn schedules_are_valid_on_smoke_instances() {
        for inst in fixtures::smoke_instances() {
            let s = Gdl.schedule(&inst);
            s.verify(&inst).expect("GDL schedule must be valid");
        }
    }

    #[test]
    fn median_helper() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut [5.0]), 5.0);
    }

    #[test]
    fn prefers_fast_node_via_delta_term() {
        // one big task, a fast and a slow node: Delta pushes it to the fast
        // node even though both are idle
        let mut g = saga_core::TaskGraph::new();
        let t = g.add_task("t", 4.0);
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0, 4.0], 1.0), g);
        let s = Gdl.schedule(&inst);
        assert_eq!(s.assignment(t).node, saga_core::NodeId(1));
    }

    #[test]
    fn higher_static_level_goes_first() {
        // head of a long chain outranks an isolated short task
        let mut g = saga_core::TaskGraph::new();
        let lone = g.add_task("lone", 1.0);
        let head = g.add_task("head", 1.0);
        let tail = g.add_task("tail", 10.0);
        g.add_dependency(head, tail, 0.1).unwrap();
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0], 1.0), g);
        let s = Gdl.schedule(&inst);
        assert!(s.assignment(head).start < s.assignment(lone).start);
    }
}
