//! FLB — Fast Load Balancing (Radulescu & van Gemund 2000).
//!
//! FCP's sibling with the selection inverted: instead of a fixed priority
//! list, FLB repeatedly schedules the ready task that can *finish* earliest,
//! considering the same two candidate nodes as FCP (first-idle node and
//! enabling node). This greedy load-balancing is cheaper on wide graphs but
//! ignores the critical path. Complexity `O(|T| log |V| + |D|)`.
//!
//! Placement is append-only, so candidates are evaluated on
//! [`util::FrontierSweep`]'s cached data-ready rows, and the first-idle
//! candidate — invariant across the ready tasks of one step — is computed
//! once per step from the cached tails instead of once per ready task.
//! Bit-identical decisions to the direct-query implementation.

use crate::{util, KernelRun};
use saga_core::{Instance, SchedContext};

/// The FLB scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Flb;

impl KernelRun for Flb {
    fn kernel_name(&self) -> &'static str {
        "FLB"
    }

    fn run(&self, inst: &Instance, ctx: &mut SchedContext) {
        ctx.reset(inst);
        let n = ctx.task_count();
        let mut sweep = util::FrontierSweep::new(ctx);
        while ctx.placed_count() < n {
            let cand1 = util::first_idle_node(ctx);
            let mut chosen: Option<(saga_core::TaskId, saga_core::NodeId, f64, f64)> = None;
            for &t in ctx.ready() {
                let cand2 = util::enabling_node(ctx, t);
                for v in [cand1, cand2] {
                    let s = sweep.start(ctx, t, v.index());
                    let f = s + ctx.exec_time(t, v);
                    let better = match chosen {
                        None => true,
                        Some((_, _, _, cf)) => f < cf,
                    };
                    if better {
                        chosen = Some((t, v, s, f));
                    }
                }
            }
            let (t, v, s, _) = chosen.expect("ready set cannot be empty in a DAG");
            ctx.place(t, v, s);
            sweep.note_placed(ctx, t);
        }
        sweep.release(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::fixtures;
    use crate::Scheduler;

    #[test]
    fn schedules_are_valid_on_smoke_instances() {
        for inst in fixtures::smoke_instances() {
            let s = Flb.schedule(&inst);
            s.verify(&inst).expect("FLB schedule must be valid");
        }
    }

    #[test]
    fn picks_quickest_finishing_ready_task() {
        let mut g = saga_core::TaskGraph::new();
        let slow = g.add_task("slow", 5.0);
        let quick = g.add_task("quick", 1.0);
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0], 1.0), g);
        let s = Flb.schedule(&inst);
        assert!(s.assignment(quick).start < s.assignment(slow).start);
    }

    #[test]
    fn spreads_independent_tasks() {
        let mut g = saga_core::TaskGraph::new();
        for i in 0..4 {
            g.add_task(format!("t{i}"), 1.0);
        }
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0, 1.0], 1.0), g);
        let s = Flb.schedule(&inst);
        assert!((s.makespan() - 2.0).abs() < 1e-9);
    }
}
