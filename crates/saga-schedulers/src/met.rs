//! MET — Minimum Execution Time (Armstrong, Hensgen & Kidd 1998).
//!
//! Assigns each task to the node with the smallest execution time regardless
//! of availability. Under the related-machines model that is always the
//! fastest node, so MET degenerates to a serial schedule there — the
//! behavior the original unrelated-machines formulation only exhibits
//! accidentally. Tasks are visited in topological order and appended at the
//! earliest feasible time. Complexity `O(|T| |V|)`.

use crate::{util, KernelRun};
use saga_core::{DirtyRegion, Instance, NodeId, RunTrace, SchedContext};

/// The MET scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Met;

fn met_loop(ctx: &mut SchedContext) {
    let n = ctx.task_count();
    while ctx.placed_count() < n {
        let t = ctx.ready()[0]; // lowest-id ready = topological order
                                // argmin over nodes of the cached execution time alone
        let mut best = NodeId(0);
        let mut best_exec = f64::INFINITY;
        for (vi, &e) in ctx.exec_row(t).iter().enumerate() {
            if e < best_exec {
                best_exec = e;
                best = NodeId(vi as u32);
            }
        }
        let (s, _) = ctx.eft(t, best, false);
        ctx.place(t, best, s);
    }
}

impl KernelRun for Met {
    fn kernel_name(&self) -> &'static str {
        "MET"
    }

    fn run(&self, inst: &Instance, ctx: &mut SchedContext) {
        ctx.reset(inst);
        met_loop(ctx);
    }

    fn run_recorded(
        &self,
        inst: &Instance,
        ctx: &mut SchedContext,
        trace: &mut RunTrace,
        dirty: &DirtyRegion,
    ) {
        ctx.reset(inst);
        ctx.begin_recording();
        util::replay_frontier_prefix(ctx, trace, dirty, false, |_, _| false);
        met_loop(ctx);
        ctx.take_recording(trace);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::fixtures;
    use crate::Scheduler;

    #[test]
    fn schedules_are_valid_on_smoke_instances() {
        for inst in fixtures::smoke_instances() {
            let s = Met.schedule(&inst);
            s.verify(&inst).expect("MET schedule must be valid");
        }
    }

    #[test]
    fn related_machines_collapse_to_fastest_node() {
        let inst = fixtures::fig1();
        let s = Met.schedule(&inst);
        let fast = inst.network.fastest_node();
        for t in inst.graph.tasks() {
            assert_eq!(s.assignment(t).node, fast);
        }
    }

    #[test]
    fn zero_cost_tasks_pick_lowest_id_node() {
        let mut g = saga_core::TaskGraph::new();
        g.add_task("z", 0.0);
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0, 5.0], 1.0), g);
        let s = Met.schedule(&inst);
        // exec time 0 everywhere; deterministic tie-break takes node 0
        assert_eq!(
            s.assignment(saga_core::TaskId(0)).node,
            saga_core::NodeId(0)
        );
    }
}
