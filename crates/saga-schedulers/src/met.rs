//! MET — Minimum Execution Time (Armstrong, Hensgen & Kidd 1998).
//!
//! Assigns each task to the node with the smallest execution time regardless
//! of availability. Under the related-machines model that is always the
//! fastest node, so MET degenerates to a serial schedule there — the
//! behavior the original unrelated-machines formulation only exhibits
//! accidentally. Tasks are visited in topological order and appended at the
//! earliest feasible time. Complexity `O(|T| |V|)`.

use crate::Scheduler;
use saga_core::{Instance, NodeId, Schedule, ScheduleBuilder};

/// The MET scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Met;

impl Scheduler for Met {
    fn name(&self) -> &'static str {
        "MET"
    }

    fn schedule(&self, inst: &Instance) -> Schedule {
        let mut b = ScheduleBuilder::new(inst);
        for t in inst.graph.topological_order() {
            // argmin over nodes of the execution time alone
            let mut best = NodeId(0);
            let mut best_exec = f64::INFINITY;
            for v in inst.network.nodes() {
                let e = inst.network.exec_time(inst.graph.cost(t), v);
                if e < best_exec {
                    best_exec = e;
                    best = v;
                }
            }
            let (s, _) = b.eft(t, best, false);
            b.place(t, best, s);
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::fixtures;

    #[test]
    fn schedules_are_valid_on_smoke_instances() {
        for inst in fixtures::smoke_instances() {
            let s = Met.schedule(&inst);
            s.verify(&inst).expect("MET schedule must be valid");
        }
    }

    #[test]
    fn related_machines_collapse_to_fastest_node() {
        let inst = fixtures::fig1();
        let s = Met.schedule(&inst);
        let fast = inst.network.fastest_node();
        for t in inst.graph.tasks() {
            assert_eq!(s.assignment(t).node, fast);
        }
    }

    #[test]
    fn zero_cost_tasks_pick_lowest_id_node() {
        let mut g = saga_core::TaskGraph::new();
        g.add_task("z", 0.0);
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0, 5.0], 1.0), g);
        let s = Met.schedule(&inst);
        // exec time 0 everywhere; deterministic tie-break takes node 0
        assert_eq!(s.assignment(saga_core::TaskId(0)).node, saga_core::NodeId(0));
    }
}
