//! Duplex (Braun et al. 2001): run MinMin and MaxMin, keep the better
//! schedule. Inherits whichever extreme suits the workload.

use crate::{MaxMin, MinMin, Scheduler};
use saga_core::{DirtyRegion, Instance, RunTrace, SchedContext, Schedule};

/// The Duplex scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Duplex;

impl Scheduler for Duplex {
    fn name(&self) -> &'static str {
        "Duplex"
    }

    fn schedule_into(&self, inst: &Instance, ctx: &mut SchedContext) -> Schedule {
        let a = MinMin.schedule_into(inst, ctx);
        let b = MaxMin.schedule_into(inst, ctx);
        // non-strict: prefer MinMin on ties (paper lists MinMin first)
        if a.makespan() <= b.makespan() {
            a
        } else {
            b
        }
    }

    fn makespan_into(&self, inst: &Instance, ctx: &mut SchedContext) -> f64 {
        let a = MinMin.makespan_into(inst, ctx);
        let b = MaxMin.makespan_into(inst, ctx);
        if a <= b {
            a
        } else {
            b
        }
    }

    fn makespan_incremental(
        &self,
        inst: &Instance,
        ctx: &mut SchedContext,
        trace: &mut RunTrace,
        dirty: &DirtyRegion,
    ) -> f64 {
        // MinMin records into the trace proper, MaxMin into its sub-trace —
        // both components replay independently
        let mut sub = trace.take_sub();
        let a = MinMin.makespan_incremental(inst, ctx, trace, dirty);
        let b = MaxMin.makespan_incremental(inst, ctx, &mut sub, dirty);
        trace.put_sub(sub);
        if a <= b {
            a
        } else {
            b
        }
    }

    fn schedule_incremental_into(
        &self,
        inst: &Instance,
        ctx: &mut SchedContext,
        trace: &mut RunTrace,
        dirty: &DirtyRegion,
    ) -> Schedule {
        let mut sub = trace.take_sub();
        let a = MinMin.schedule_incremental_into(inst, ctx, trace, dirty);
        let b = MaxMin.schedule_incremental_into(inst, ctx, &mut sub, dirty);
        trace.put_sub(sub);
        // non-strict: prefer MinMin on ties (paper lists MinMin first)
        if a.makespan() <= b.makespan() {
            a
        } else {
            b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::fixtures;

    #[test]
    fn schedules_are_valid_on_smoke_instances() {
        for inst in fixtures::smoke_instances() {
            let s = Duplex.schedule(&inst);
            s.verify(&inst).expect("Duplex schedule must be valid");
        }
    }

    #[test]
    fn never_worse_than_either_component() {
        for inst in fixtures::smoke_instances() {
            let d = Duplex.schedule(&inst).makespan();
            let a = MinMin.schedule(&inst).makespan();
            let b = MaxMin.schedule(&inst).makespan();
            assert!(d <= a + 1e-9 && d <= b + 1e-9, "duplex {d} vs {a}/{b}");
        }
    }

    #[test]
    fn picks_maxmin_when_it_wins() {
        // the skewed-load example from the MaxMin tests: MinMin ends at 3,
        // MaxMin at 2, so Duplex must return 2
        let mut g = saga_core::TaskGraph::new();
        g.add_task("a", 2.0);
        g.add_task("b", 1.0);
        g.add_task("c", 1.0);
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0, 1.0], 1.0), g);
        let d = Duplex.schedule(&inst).makespan();
        assert!((d - 2.0).abs() < 1e-9);
    }
}
