//! ETF — Earliest Task First (Hwang, Chow, Anger & Lee 1989).
//!
//! At every step, among all ready tasks and all nodes, pick the (task, node)
//! pair with the earliest possible *start* time — in contrast with HEFT's
//! earliest *finish* time — and schedule it there (append-only, as in the
//! original). Ties are broken by the higher static priority (upward rank).
//! ETF carries the paper's only formal bound, proved for homogeneous
//! processors: `w_ETF <= (2 - 1/n) w_opt^(i) + C`. Complexity `O(|T| |V|^2)`
//! per the original analysis (our frontier scan is `O(|T|^2 |V|)` worst
//! case, identical on the paper's instance sizes).

use crate::{util, KernelRun};
use saga_core::{DirtyRegion, Instance, RunTrace, SchedContext, TaskId};

/// The ETF scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Etf;

/// ETF's selection loop from whatever partial state `ctx` is in.
fn etf_loop(ctx: &mut SchedContext, sweep: &mut util::FrontierSweep, rank: &[f64]) {
    let n = ctx.task_count();
    let fused = util::fused_rows_profitable(ctx.node_count());
    while ctx.placed_count() < n {
        let mut chosen: Option<(TaskId, saga_core::NodeId, f64)> = None;
        for &t in ctx.ready() {
            // per-task best node: earliest start, earlier finish on ties
            let (v, s, _) = if fused {
                sweep.best_node_est(ctx, t)
            } else {
                sweep.best_node(ctx, t, |(s, f), (bs, bf)| s < bs || (s == bs && f < bf))
            };
            let better = match chosen {
                None => true,
                Some((ct, _, cs)) => s < cs || (s == cs && rank[t.index()] > rank[ct.index()]),
            };
            if better {
                chosen = Some((t, v, s));
            }
        }
        let (t, v, s) = chosen.expect("ready set cannot be empty in a DAG");
        ctx.place(t, v, s);
        sweep.note_placed(ctx, t);
    }
}

impl KernelRun for Etf {
    fn kernel_name(&self) -> &'static str {
        "ETF"
    }

    fn run(&self, inst: &Instance, ctx: &mut SchedContext) {
        ctx.reset(inst);
        let mut rank = ctx.take_f64();
        ctx.upward_ranks_into(&mut rank);
        // append-only sweep: every (start, finish) comes from the cached
        // data-ready rows
        let mut sweep = util::FrontierSweep::new(ctx);
        etf_loop(ctx, &mut sweep, &rank);
        sweep.release(ctx);
        ctx.give_f64(rank);
    }

    fn run_recorded(
        &self,
        inst: &Instance,
        ctx: &mut SchedContext,
        trace: &mut RunTrace,
        dirty: &DirtyRegion,
    ) {
        ctx.reset(inst);
        let mut rank = ctx.take_f64();
        ctx.upward_ranks_into(&mut rank);
        ctx.begin_recording();
        // ETF breaks equal-start ties by upward rank, so beyond the generic
        // frontier rule the replay must also stop once any task whose rank
        // *bits* changed since the recorded run (the trace's aux row) sits
        // in the frontier — its tie could now break the other way.
        if !dirty.is_full()
            && trace.matches(ctx.task_count(), ctx.node_count())
            && trace.aux().len() == rank.len()
        {
            let mut changed = ctx.take_tasks();
            for (i, (r, old)) in rank.iter().zip(trace.aux()).enumerate() {
                if r.to_bits() != old.to_bits() {
                    changed.push(TaskId(i as u32));
                }
            }
            util::replay_frontier_prefix(ctx, trace, dirty, true, |ctx, _| {
                changed
                    .iter()
                    .any(|&t| !ctx.is_placed(t) && ctx.is_ready(t))
            });
            ctx.give_tasks(changed);
        }
        let mut sweep = util::FrontierSweep::new(ctx);
        etf_loop(ctx, &mut sweep, &rank);
        sweep.release(ctx);
        ctx.take_recording(trace);
        trace.set_aux(&rank);
        ctx.give_f64(rank);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::fixtures;
    use crate::Scheduler;
    use saga_core::ranking;

    #[test]
    fn schedules_are_valid_on_smoke_instances() {
        for inst in fixtures::smoke_instances() {
            let s = Etf.schedule(&inst);
            s.verify(&inst).expect("ETF schedule must be valid");
        }
    }

    #[test]
    fn starts_a_task_immediately_on_an_idle_node() {
        // ETF's defining move: it would rather start *now* on a slow node
        // than wait for a fast one.
        let mut g = saga_core::TaskGraph::new();
        g.add_task("a", 1.0);
        g.add_task("b", 1.0);
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0, 100.0], 1.0), g);
        let s = Etf.schedule(&inst);
        // both tasks can start at 0, so they are spread across both nodes
        let n0 = s.assignment(saga_core::TaskId(0)).node;
        let n1 = s.assignment(saga_core::TaskId(1)).node;
        assert_ne!(n0, n1);
        assert_eq!(s.assignment(saga_core::TaskId(0)).start, 0.0);
        assert_eq!(s.assignment(saga_core::TaskId(1)).start, 0.0);
    }

    #[test]
    fn est_tie_broken_by_upward_rank() {
        // two ready tasks, both can start at 0; the higher-rank (longer
        // remaining path) one goes first onto the fast node
        let mut g = saga_core::TaskGraph::new();
        let short = g.add_task("short", 1.0);
        let head = g.add_task("head", 1.0);
        let tail = g.add_task("tail", 10.0);
        g.add_dependency(head, tail, 0.0).unwrap();
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0], 1.0), g);
        let s = Etf.schedule(&inst);
        assert!(s.assignment(head).start < s.assignment(short).start);
    }

    #[test]
    fn homogeneous_bound_holds_on_random_instances() {
        // sanity-check the Hwang et al. bound shape on communication-free
        // homogeneous instances: ETF <= (2 - 1/n) * OPT_nocomm, where
        // OPT_nocomm >= total/n and >= critical path exec length.
        for seed in 0..5u64 {
            let mut inst = fixtures::random_instance(seed, 8, 3, 0.3);
            // homogenize: unit speeds, free comm
            let speeds = vec![1.0; inst.network.node_count()];
            inst.network = saga_core::Network::complete(&speeds, f64::INFINITY);
            let s = Etf.schedule(&inst);
            s.verify(&inst).unwrap();
            let nnodes = inst.network.node_count() as f64;
            let lb = (inst.graph.total_cost() / nnodes).max(ranking::critical_path(&inst).length);
            assert!(
                s.makespan() <= (2.0 - 1.0 / nnodes) * lb + 1e-9,
                "seed {seed}: {} > (2-1/n) * {lb}",
                s.makespan()
            );
        }
    }
}
