//! BIL — Best Imaginary Level (Oh & Ha 1996).
//!
//! Designed for the unrelated-machines model (strictly more general than the
//! related model used here). The *best imaginary level* of a task on a node
//! is the length of the shortest possible remaining schedule if the task ran
//! on that node and every successor got its ideal choice:
//!
//! ```text
//! BIL(t, v) = exec(t, v) + max_{s in succ(t)} min( BIL(s, v),
//!                min_{v' != v} BIL(s, v') + comm(t, s, v -> v') )
//! ```
//!
//! The scheduling phase then repeatedly takes the ready task whose best
//! imaginary makespan `BIM(t, v) = EST(t, v) + BIL(t, v)` is largest (most
//! urgent) and places it on its arg-min node. We implement the core BIL/BIM
//! machinery; the original's k-th-order-statistic refinement for resolving
//! contention between equally-ready tasks is simplified to the max/min rule
//! above (documented deviation — it affects only dense tie situations).
//! Complexity `O(|T|^2 |V| log |V|)` per the original analysis.

use crate::{util, Scheduler};
use saga_core::{Instance, NodeId, Schedule, ScheduleBuilder, TaskId};


/// The BIL scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bil;

/// Computes the `BIL(t, v)` table, reverse-topologically.
fn bil_table(inst: &Instance) -> Vec<Vec<f64>> {
    let g = &inst.graph;
    let net = &inst.network;
    let nv = net.node_count();
    let mut bil = vec![vec![0.0f64; nv]; g.task_count()];
    for &t in inst.graph.topological_order().iter().rev() {
        for v in net.nodes() {
            let mut level = 0.0f64;
            for e in g.successors(t) {
                // successor stays on v...
                let mut best = bil[e.task.index()][v.index()];
                // ...or moves elsewhere, paying the message
                for v2 in net.nodes() {
                    if v2 != v {
                        let candidate =
                            bil[e.task.index()][v2.index()] + net.comm_time(e.cost, v, v2);
                        best = best.min(candidate);
                    }
                }
                level = level.max(best);
            }
            bil[t.index()][v.index()] = net.exec_time(g.cost(t), v) + level;
        }
    }
    bil
}

impl Scheduler for Bil {
    fn name(&self) -> &'static str {
        "BIL"
    }

    fn schedule(&self, inst: &Instance) -> Schedule {
        let bil = bil_table(inst);
        let n = inst.graph.task_count();
        let mut b = ScheduleBuilder::new(inst);
        while b.placed_count() < n {
            let ready = util::ready_tasks(&b);
            // priority of a ready task: its best (minimum over nodes) BIM;
            // the task with the largest best-BIM is the most urgent
            let mut chosen: Option<(TaskId, NodeId, f64, f64)> = None;
            for &t in &ready {
                let mut best_node: Option<(NodeId, f64, f64)> = None; // (v, start, bim)
                for v in inst.network.nodes() {
                    let (s, _) = b.eft(t, v, false);
                    let bim = s + bil[t.index()][v.index()];
                    let better = match best_node {
                        None => true,
                        Some((_, _, bb)) => bim < bb,
                    };
                    if better {
                        best_node = Some((v, s, bim));
                    }
                }
                let (v, s, bim) = best_node.expect("non-empty network");
                let better = match chosen {
                    None => true,
                    Some((ct, _, _, cb)) => {
                        bim > cb || (bim == cb && t < ct)
                    }
                };
                if better {
                    chosen = Some((t, v, s, bim));
                }
            }
            let (t, v, s, _) = chosen.expect("ready set cannot be empty in a DAG");
            b.place(t, v, s);
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::fixtures;

    #[test]
    fn schedules_are_valid_on_smoke_instances() {
        for inst in fixtures::smoke_instances() {
            let s = Bil.schedule(&inst);
            s.verify(&inst).expect("BIL schedule must be valid");
        }
    }

    #[test]
    fn bil_table_of_sink_is_exec_time() {
        let inst = fixtures::fig1();
        let bil = bil_table(&inst);
        // t4 (sink, cost 0.8) on v2 (speed 1.5): BIL = 0.8 / 1.5
        assert!((bil[3][2] - 0.8 / 1.5).abs() < 1e-12);
        assert!((bil[3][0] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn bil_is_optimal_on_linear_graphs() {
        // Oh & Ha prove BIL optimal for chains: compare against brute force
        // on a few random chains.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for _ in 0..5 {
            let costs: Vec<f64> = (0..4).map(|_| rng.gen_range(0.2..2.0)).collect();
            let deps: Vec<f64> = (0..3).map(|_| rng.gen_range(0.2..2.0)).collect();
            let g = saga_core::TaskGraph::chain(&costs, &deps);
            let speeds: Vec<f64> = (0..3).map(|_| rng.gen_range(0.5..2.0)).collect();
            let inst = saga_core::Instance::new(saga_core::Network::complete(&speeds, 1.0), g);
            let bil = Bil.schedule(&inst).makespan();
            let opt = crate::BruteForce::default().schedule(&inst).makespan();
            assert!(
                bil <= opt + 1e-9,
                "BIL {bil} > OPT {opt} on a chain"
            );
        }
    }

    #[test]
    fn chain_bil_equals_min_over_serial_choices() {
        // trivial 1-task sanity
        let mut g = saga_core::TaskGraph::new();
        let t = g.add_task("t", 2.0);
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0, 2.0], 1.0), g);
        let s = Bil.schedule(&inst);
        assert_eq!(s.assignment(t).node, saga_core::NodeId(1));
        assert!((s.makespan() - 1.0).abs() < 1e-12);
    }
}
