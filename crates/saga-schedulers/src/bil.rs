//! BIL — Best Imaginary Level (Oh & Ha 1996).
//!
//! Designed for the unrelated-machines model (strictly more general than the
//! related model used here). The *best imaginary level* of a task on a node
//! is the length of the shortest possible remaining schedule if the task ran
//! on that node and every successor got its ideal choice:
//!
//! ```text
//! BIL(t, v) = exec(t, v) + max_{s in succ(t)} min( BIL(s, v),
//!                min_{v' != v} BIL(s, v') + comm(t, s, v -> v') )
//! ```
//!
//! The scheduling phase then repeatedly takes the ready task whose best
//! imaginary makespan `BIM(t, v) = EST(t, v) + BIL(t, v)` is largest (most
//! urgent) and places it on its arg-min node. We implement the core BIL/BIM
//! machinery; the original's k-th-order-statistic refinement for resolving
//! contention between equally-ready tasks is simplified to the max/min rule
//! above (documented deviation — it affects only dense tie situations).
//! Complexity `O(|T|^2 |V| log |V|)` per the original analysis.

use crate::{util, KernelRun};
use saga_core::{DirtyRegion, Instance, NodeId, RunTrace, SchedContext, TaskId};

/// The BIL scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bil;

/// Computes the `BIL(t, v)` table, reverse-topologically, into a flat
/// task-major buffer (`out[t * |V| + v]`).
fn bil_table_into(ctx: &SchedContext, out: &mut Vec<f64>) {
    let nv = ctx.node_count();
    out.clear();
    out.resize(ctx.task_count() * nv, 0.0);
    for &t in ctx.topo_order().iter().rev() {
        for v in ctx.nodes() {
            let mut level = 0.0f64;
            for (st, cost) in ctx.succs(t) {
                // successor stays on v...
                let mut best = out[st.index() * nv + v.index()];
                // ...or moves elsewhere, paying the message
                for v2 in ctx.nodes() {
                    if v2 != v {
                        let candidate =
                            out[st.index() * nv + v2.index()] + ctx.comm_time(cost, v, v2);
                        best = best.min(candidate);
                    }
                }
                level = level.max(best);
            }
            out[t.index() * nv + v.index()] = ctx.exec_time(t, v) + level;
        }
    }
}

/// BIL's selection loop from whatever partial state `ctx` is in.
fn bil_loop(ctx: &mut SchedContext, bil: &[f64]) {
    let n = ctx.task_count();
    let nv = ctx.node_count();
    while ctx.placed_count() < n {
        // priority of a ready task: its best (minimum over nodes) BIM;
        // the task with the largest best-BIM is the most urgent
        let mut chosen: Option<(TaskId, NodeId, f64, f64)> = None;
        for &t in ctx.ready() {
            let mut best_node: Option<(NodeId, f64, f64)> = None; // (v, start, bim)
            for v in ctx.nodes() {
                let (s, _) = ctx.eft(t, v, false);
                let bim = s + bil[t.index() * nv + v.index()];
                let better = match best_node {
                    None => true,
                    Some((_, _, bb)) => bim < bb,
                };
                if better {
                    best_node = Some((v, s, bim));
                }
            }
            let (v, s, bim) = best_node.expect("non-empty network");
            let better = match chosen {
                None => true,
                Some((ct, _, _, cb)) => bim > cb || (bim == cb && t < ct),
            };
            if better {
                chosen = Some((t, v, s, bim));
            }
        }
        let (t, v, s, _) = chosen.expect("ready set cannot be empty in a DAG");
        ctx.place(t, v, s);
    }
}

impl KernelRun for Bil {
    fn kernel_name(&self) -> &'static str {
        "BIL"
    }

    fn run(&self, inst: &Instance, ctx: &mut SchedContext) {
        ctx.reset(inst);
        let mut bil = ctx.take_f64();
        bil_table_into(ctx, &mut bil);
        bil_loop(ctx, &bil);
        ctx.give_f64(bil);
    }

    fn run_recorded(
        &self,
        inst: &Instance,
        ctx: &mut SchedContext,
        trace: &mut RunTrace,
        dirty: &DirtyRegion,
    ) {
        ctx.reset(inst);
        let mut bil = ctx.take_f64();
        bil_table_into(ctx, &mut bil);
        ctx.begin_recording();
        // a ready task's BIM folds its whole BIL row into the selection, so
        // the replay additionally stops once a task whose BIL row bits
        // changed since the recorded run sits in the frontier
        if !dirty.is_full()
            && trace.matches(ctx.task_count(), ctx.node_count())
            && trace.aux().len() == bil.len()
        {
            let nv = ctx.node_count();
            let mut changed = ctx.take_tasks();
            for t in 0..ctx.task_count() {
                if bil[t * nv..(t + 1) * nv]
                    .iter()
                    .zip(&trace.aux()[t * nv..(t + 1) * nv])
                    .any(|(a, b)| a.to_bits() != b.to_bits())
                {
                    changed.push(TaskId(t as u32));
                }
            }
            util::replay_frontier_prefix(ctx, trace, dirty, true, |ctx, _| {
                changed
                    .iter()
                    .any(|&t| !ctx.is_placed(t) && ctx.is_ready(t))
            });
            ctx.give_tasks(changed);
        }
        bil_loop(ctx, &bil);
        ctx.take_recording(trace);
        trace.set_aux(&bil);
        ctx.give_f64(bil);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::fixtures;
    use crate::Scheduler;

    #[test]
    fn schedules_are_valid_on_smoke_instances() {
        for inst in fixtures::smoke_instances() {
            let s = Bil.schedule(&inst);
            s.verify(&inst).expect("BIL schedule must be valid");
        }
    }

    #[test]
    fn bil_table_of_sink_is_exec_time() {
        let inst = fixtures::fig1();
        let mut ctx = SchedContext::new();
        ctx.reset(&inst);
        let mut bil = Vec::new();
        bil_table_into(&ctx, &mut bil);
        let nv = ctx.node_count();
        // t4 (sink, cost 0.8) on v2 (speed 1.5): BIL = 0.8 / 1.5
        assert!((bil[3 * nv + 2] - 0.8 / 1.5).abs() < 1e-12);
        assert!((bil[3 * nv] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn bil_is_optimal_on_linear_graphs() {
        // Oh & Ha prove BIL optimal for chains: compare against brute force
        // on a few random chains.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for _ in 0..5 {
            let costs: Vec<f64> = (0..4).map(|_| rng.gen_range(0.2..2.0)).collect();
            let deps: Vec<f64> = (0..3).map(|_| rng.gen_range(0.2..2.0)).collect();
            let g = saga_core::TaskGraph::chain(&costs, &deps);
            let speeds: Vec<f64> = (0..3).map(|_| rng.gen_range(0.5..2.0)).collect();
            let inst = saga_core::Instance::new(saga_core::Network::complete(&speeds, 1.0), g);
            let bil = Bil.schedule(&inst).makespan();
            let opt = crate::BruteForce::default().schedule(&inst).makespan();
            assert!(bil <= opt + 1e-9, "BIL {bil} > OPT {opt} on a chain");
        }
    }

    #[test]
    fn chain_bil_equals_min_over_serial_choices() {
        // trivial 1-task sanity
        let mut g = saga_core::TaskGraph::new();
        let t = g.add_task("t", 2.0);
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0, 2.0], 1.0), g);
        let s = Bil.schedule(&inst);
        assert_eq!(s.assignment(t).node, saga_core::NodeId(1));
        assert!((s.makespan() - 1.0).abs() < 1e-12);
    }
}
