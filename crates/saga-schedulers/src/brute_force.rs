//! BruteForce — exhaustive search over list schedules.
//!
//! Depth-first search over every (ready task, node) decision sequence with
//! earliest-feasible start times, pruned branch-and-bound style by the best
//! makespan found so far. For a fixed assignment and processing order the
//! earliest-start list schedule is optimal among schedules with that order,
//! so this enumeration covers an optimal schedule. Exponential — the paper
//! excludes it from benchmarking for exactly that reason; keep it to toy
//! instances (≲ 8 tasks, ≲ 4 nodes).

use crate::Scheduler;
use saga_core::{Instance, SchedContext, Schedule, TaskId};

/// The exhaustive reference scheduler.
#[derive(Debug, Clone, Copy)]
pub struct BruteForce {
    /// Safety cap on explored decision states; on overflow the best schedule
    /// found so far is returned (still valid, possibly suboptimal).
    pub max_states: u64,
}

impl Default for BruteForce {
    fn default() -> Self {
        BruteForce {
            max_states: 2_000_000,
        }
    }
}

struct Search {
    best_makespan: f64,
    best: Option<Schedule>,
    states: u64,
    max_states: u64,
}

impl Search {
    /// Depth-first search by place/unplace on the shared context — no
    /// per-state cloning; the kernel's `unplace` restores counters, ready
    /// queue and timeline exactly.
    fn dfs(&mut self, ctx: &mut SchedContext) {
        if self.states >= self.max_states {
            return;
        }
        self.states += 1;
        let n = ctx.task_count();
        if ctx.placed_count() == n {
            let m = ctx.current_makespan();
            if m < self.best_makespan || self.best.is_none() {
                self.best_makespan = m;
                self.best = Some(ctx.snapshot_schedule());
            }
            return;
        }
        // prune: the partial makespan only grows
        if ctx.current_makespan() >= self.best_makespan {
            return;
        }
        for ti in 0..n as u32 {
            let t = TaskId(ti);
            if ctx.is_placed(t) || !ctx.is_ready(t) {
                continue;
            }
            for v in 0..ctx.node_count() as u32 {
                let v = saga_core::NodeId(v);
                let (s, f) = ctx.eft(t, v, false);
                if f >= self.best_makespan && self.best.is_some() {
                    continue;
                }
                ctx.place(t, v, s);
                self.dfs(ctx);
                ctx.unplace(t);
            }
        }
    }
}

impl Scheduler for BruteForce {
    fn name(&self) -> &'static str {
        "BruteForce"
    }

    fn schedule_into(&self, inst: &Instance, ctx: &mut SchedContext) -> Schedule {
        let mut search = Search {
            best_makespan: f64::INFINITY,
            best: None,
            states: 0,
            max_states: self.max_states,
        };
        ctx.reset(inst);
        search.dfs(ctx);
        search.best.unwrap_or_else(|| {
            // cap exhausted before any complete schedule (pathological cap):
            // fall back to a valid heuristic schedule
            crate::Heft.schedule_into(inst, ctx)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::fixtures;
    use crate::Scheduler;

    #[test]
    fn schedules_are_valid_on_small_instances() {
        for inst in [
            fixtures::fig1(),
            fixtures::random_instance(1, 5, 2, 0.4),
            fixtures::random_instance(2, 4, 3, 0.5),
        ] {
            let s = BruteForce::default().schedule(&inst);
            s.verify(&inst).expect("BruteForce schedule must be valid");
        }
    }

    #[test]
    fn never_worse_than_any_heuristic() {
        for seed in 0..4u64 {
            let inst = fixtures::random_instance(seed, 5, 2, 0.4);
            let opt = BruteForce::default().schedule(&inst).makespan();
            for s in crate::benchmark_schedulers() {
                let m = s.schedule(&inst).makespan();
                assert!(
                    opt <= m + 1e-9,
                    "BruteForce {opt} worse than {} {m} (seed {seed})",
                    s.name()
                );
            }
        }
    }

    #[test]
    fn finds_known_optimum() {
        // two unit tasks, two unit nodes, free comm: optimum is 1
        let mut g = saga_core::TaskGraph::new();
        g.add_task("a", 1.0);
        g.add_task("b", 1.0);
        let inst =
            saga_core::Instance::new(saga_core::Network::complete(&[1.0, 1.0], f64::INFINITY), g);
        assert!((BruteForce::default().schedule(&inst).makespan() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tiny_cap_still_returns_valid_schedule() {
        let inst = fixtures::fig1();
        let s = BruteForce { max_states: 1 }.schedule(&inst);
        s.verify(&inst).unwrap();
    }
}
