//! BnbSearch — binary search over the makespan with a branch-and-bound
//! feasibility oracle. **Substitute for the paper's SMT scheduler.**
//!
//! SAGA's `SMT` scheduler asks an SMT solver whether a schedule with
//! makespan `<= M` exists and binary-searches `M` to a `(1 + eps)`-optimal
//! schedule. No SMT solver is available offline, so the decision oracle here
//! is a depth-first search over (ready task, node) decisions that prunes any
//! partial schedule already exceeding `M` — same interface, same role
//! (an exponential-time reference answer), different engine. Documented in
//! DESIGN.md under substitutions.

use crate::Scheduler;
use saga_core::Instance;
use saga_core::{SchedContext, Schedule, TaskId};

/// The (1+eps)-optimal binary-search scheduler.
#[derive(Debug, Clone, Copy)]
pub struct BnbSearch {
    /// Relative gap at which the binary search stops.
    pub epsilon: f64,
    /// Safety cap on oracle states per feasibility query; a capped query is
    /// treated as infeasible (the result stays a valid upper bound).
    pub max_states: u64,
}

impl Default for BnbSearch {
    fn default() -> Self {
        BnbSearch {
            epsilon: 0.01,
            max_states: 500_000,
        }
    }
}

struct Oracle {
    bound: f64,
    states: u64,
    max_states: u64,
    found: Option<Schedule>,
}

impl Oracle {
    /// Depth-first feasibility search by place/unplace on the shared
    /// context — no per-state cloning.
    fn dfs(&mut self, ctx: &mut SchedContext) -> bool {
        if self.found.is_some() || self.states >= self.max_states {
            return self.found.is_some();
        }
        self.states += 1;
        if ctx.placed_count() == ctx.task_count() {
            self.found = Some(ctx.snapshot_schedule());
            return true;
        }
        for ti in 0..ctx.task_count() as u32 {
            let t = TaskId(ti);
            if ctx.is_placed(t) || !ctx.is_ready(t) {
                continue;
            }
            for v in 0..ctx.node_count() as u32 {
                let v = saga_core::NodeId(v);
                let (s, f) = ctx.eft(t, v, false);
                if f > self.bound + 1e-12 * self.bound.abs().max(1.0) {
                    continue;
                }
                ctx.place(t, v, s);
                let hit = self.dfs(ctx);
                ctx.unplace(t);
                if hit {
                    return true;
                }
            }
        }
        false
    }
}

impl BnbSearch {
    /// A safe lower bound on the optimal makespan: the larger of (a) the
    /// critical path executed entirely on the fastest node with free
    /// communication and (b) the total work spread over all node speeds.
    fn lower_bound(inst: &Instance) -> f64 {
        let fastest = inst.network.speed(inst.network.fastest_node());
        if fastest == 0.0 {
            return 0.0;
        }
        // longest chain of task costs (no comm), over the fastest speed
        let order = inst.graph.topological_order();
        let mut chain = vec![0.0f64; inst.graph.task_count()];
        for &t in order.iter().rev() {
            let mut best = 0.0f64;
            for e in inst.graph.successors(t) {
                best = best.max(chain[e.task.index()]);
            }
            chain[t.index()] = inst.graph.cost(t) + best;
        }
        let cp = chain.iter().fold(0.0f64, |a, &b| a.max(b)) / fastest;
        let total_speed: f64 = inst.network.speeds().iter().sum();
        let area = if total_speed > 0.0 {
            inst.graph.total_cost() / total_speed
        } else {
            0.0
        };
        cp.max(area)
    }
}

impl Scheduler for BnbSearch {
    fn name(&self) -> &'static str {
        "BnB"
    }

    fn schedule_into(&self, inst: &Instance, ctx: &mut SchedContext) -> Schedule {
        // initial upper bound: best of the fast heuristics
        let mut best = crate::Heft.schedule_into(inst, ctx);
        for h in [
            crate::FastestNode.schedule_into(inst, ctx),
            crate::Cpop.schedule_into(inst, ctx),
        ] {
            if h.makespan() < best.makespan() {
                best = h;
            }
        }
        let mut ub = best.makespan();
        if !ub.is_finite() {
            return best; // nothing finite to search below
        }
        let mut lb = Self::lower_bound(inst);
        while ub - lb > self.epsilon * lb.max(1e-12) {
            let mid = 0.5 * (lb + ub);
            let mut oracle = Oracle {
                bound: mid,
                states: 0,
                max_states: self.max_states,
                found: None,
            };
            ctx.reset(inst);
            oracle.dfs(ctx);
            match oracle.found {
                Some(s) => {
                    ub = s.makespan();
                    best = s;
                }
                None => lb = mid,
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::fixtures;

    #[test]
    fn schedules_are_valid_on_small_instances() {
        for inst in [fixtures::fig1(), fixtures::random_instance(3, 5, 2, 0.4)] {
            let s = BnbSearch::default().schedule(&inst);
            s.verify(&inst).expect("BnB schedule must be valid");
        }
    }

    #[test]
    fn close_to_brute_force_optimum() {
        for seed in 0..4u64 {
            let inst = fixtures::random_instance(seed, 5, 2, 0.4);
            let opt = crate::BruteForce::default().schedule(&inst).makespan();
            let bnb = BnbSearch::default().schedule(&inst).makespan();
            assert!(
                bnb <= opt * 1.02 + 1e-9,
                "BnB {bnb} not within (1+eps) of OPT {opt} (seed {seed})"
            );
        }
    }

    #[test]
    fn lower_bound_is_a_true_lower_bound() {
        for seed in 0..4u64 {
            let inst = fixtures::random_instance(seed, 5, 2, 0.4);
            let lb = BnbSearch::lower_bound(&inst);
            let opt = crate::BruteForce::default().schedule(&inst).makespan();
            assert!(lb <= opt + 1e-9, "LB {lb} above OPT {opt}");
        }
    }

    #[test]
    fn degenerate_zero_speed_network_returns_valid_schedule() {
        let mut g = saga_core::TaskGraph::new();
        g.add_task("a", 1.0);
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[0.0], 1.0), g);
        let s = BnbSearch::default().schedule(&inst);
        s.verify(&inst).unwrap();
        assert!(s.makespan().is_infinite());
    }
}
