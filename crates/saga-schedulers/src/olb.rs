//! OLB — Opportunistic Load Balancing (Armstrong, Hensgen & Kidd 1998).
//!
//! Assigns tasks in arbitrary (topological) order to the node that becomes
//! *available* earliest, ignoring both execution time and data transfer —
//! the paper calls it "probably useful only as a baseline". Complexity
//! `O(|T| |V|)`.

use crate::{util, KernelRun};
use saga_core::{Instance, SchedContext};

/// The OLB scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Olb;

fn olb_loop(ctx: &mut SchedContext) {
    let n = ctx.task_count();
    while ctx.placed_count() < n {
        let t = ctx.ready()[0]; // lowest-id ready = topological order
        let v = util::first_idle_node(ctx);
        let (s, _) = ctx.eft(t, v, false);
        ctx.place(t, v, s);
    }
}

impl KernelRun for Olb {
    fn kernel_name(&self) -> &'static str {
        "OLB"
    }

    fn run(&self, inst: &Instance, ctx: &mut SchedContext) {
        ctx.reset(inst);
        olb_loop(ctx);
    }

    fn run_recorded(
        &self,
        inst: &Instance,
        ctx: &mut SchedContext,
        trace: &mut saga_core::RunTrace,
        dirty: &saga_core::DirtyRegion,
    ) {
        ctx.reset(inst);
        ctx.begin_recording();
        util::replay_frontier_prefix(ctx, trace, dirty, false, |_, _| false);
        olb_loop(ctx);
        ctx.take_recording(trace);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::fixtures;
    use crate::Scheduler;

    #[test]
    fn schedules_are_valid_on_smoke_instances() {
        for inst in fixtures::smoke_instances() {
            let s = Olb.schedule(&inst);
            s.verify(&inst).expect("OLB schedule must be valid");
        }
    }

    #[test]
    fn round_robins_independent_tasks() {
        let mut g = saga_core::TaskGraph::new();
        for i in 0..4 {
            g.add_task(format!("t{i}"), 1.0);
        }
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0, 1.0], 1.0), g);
        let s = Olb.schedule(&inst);
        // two nodes, four unit tasks -> two per node
        assert!((s.makespan() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ignores_node_speed() {
        // OLB happily puts the first task on a glacially slow node if it is
        // idle — that is its defining weakness.
        let mut g = saga_core::TaskGraph::new();
        g.add_task("a", 1.0);
        g.add_task("b", 1.0);
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[0.01, 1.0], 1.0), g);
        let s = Olb.schedule(&inst);
        // first task lands on node 0 (slow) because both are idle and ties
        // break by id; its makespan dwarfs the fast-node alternative
        assert!(s.makespan() >= 100.0 - 1e-9);
    }
}
