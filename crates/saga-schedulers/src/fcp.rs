//! FCP — Fast Critical Path (Radulescu & van Gemund 2000).
//!
//! A low-complexity list scheduler designed for heterogeneous task graphs,
//! heterogeneous node speeds, but homogeneous communication. Tasks are
//! prioritized once by static bottom level (upward rank); at each step the
//! highest-priority ready task is placed, but — this is the trick that makes
//! FCP `O(|T| log |V| + |D|)` — only **two** candidate nodes are examined:
//! the node that becomes idle first, and the task's *enabling node* (where
//! its last-arriving message originates, making that message free). The
//! candidate with the earlier finish wins.

use crate::{util, KernelRun};
use saga_core::{Instance, SchedContext};

/// The FCP scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fcp;

impl KernelRun for Fcp {
    fn kernel_name(&self) -> &'static str {
        "FCP"
    }

    fn run(&self, inst: &Instance, ctx: &mut SchedContext) {
        ctx.reset(inst);
        let mut rank = ctx.take_f64();
        ctx.upward_ranks_into(&mut rank);
        let n = ctx.task_count();
        while ctx.placed_count() < n {
            let &t = ctx
                .ready()
                .iter()
                .max_by(|&&a, &&c| rank[a.index()].total_cmp(&rank[c.index()]).then(c.cmp(&a)))
                .expect("ready set cannot be empty in a DAG");
            let cand1 = util::first_idle_node(ctx);
            let cand2 = util::enabling_node(ctx, t);
            let (s1, f1) = ctx.eft(t, cand1, false);
            let (s2, f2) = ctx.eft(t, cand2, false);
            if f1 <= f2 {
                ctx.place(t, cand1, s1);
            } else {
                ctx.place(t, cand2, s2);
            }
        }
        ctx.give_f64(rank);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::fixtures;
    use crate::Scheduler;

    #[test]
    fn schedules_are_valid_on_smoke_instances() {
        for inst in fixtures::smoke_instances() {
            let s = Fcp.schedule(&inst);
            s.verify(&inst).expect("FCP schedule must be valid");
        }
    }

    #[test]
    fn child_follows_heavy_message_to_enabling_node() {
        // expensive message: the child should run where its input lives
        let mut g = saga_core::TaskGraph::new();
        let a = g.add_task("a", 1.0);
        let b_ = g.add_task("b", 1.0);
        g.add_dependency(a, b_, 100.0).unwrap();
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0, 1.0], 1.0), g);
        let s = Fcp.schedule(&inst);
        assert_eq!(s.assignment(a).node, s.assignment(b_).node);
    }

    #[test]
    fn cheap_message_allows_first_idle_node() {
        // free message: the child can take whichever node frees first
        let mut g = saga_core::TaskGraph::new();
        let a = g.add_task("a", 10.0);
        let b_ = g.add_task("b", 1.0);
        let c = g.add_task("c", 1.0);
        g.add_dependency(a, b_, 0.0).unwrap();
        g.add_dependency(a, c, 0.0).unwrap();
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0, 1.0], 1.0), g);
        let s = Fcp.schedule(&inst);
        s.verify(&inst).unwrap();
        // b and c run in parallel on different nodes right after a
        assert_ne!(s.assignment(b_).node, s.assignment(c).node);
    }

    #[test]
    fn respects_priority_order() {
        let inst = fixtures::fig1();
        let s = Fcp.schedule(&inst);
        s.verify(&inst).unwrap();
        // t1 must start at 0 (it is the only source)
        assert_eq!(s.assignment(saga_core::TaskId(0)).start, 0.0);
    }
}
