//! Online scheduling — the paper's future-work item "online scheduling
//! (e.g., scheduling tasks as they arrive)".
//!
//! The offline problem reveals the whole task graph up front; here every
//! task additionally has a *release time* and the scheduler is
//! non-clairvoyant: it can only place tasks that have already been released
//! (and whose predecessors are placed), it never sees future arrivals, and a
//! task cannot start before its release. The event loop advances a
//! visibility clock to the next release whenever no visible task is ready.
//!
//! Policies implement [`OnlinePolicy`] — a choice among the currently
//! visible ready tasks. [`OnlineEft`] (greedy earliest finish, the online
//! analogue of MCT) and [`OnlineOlb`] (first-idle node) are provided;
//! comparing their schedules against offline HEFT quantifies the price of
//! not knowing the future.

use crate::{util, Scheduler};
use saga_core::{Instance, NodeId, Schedule, ScheduleBuilder, TaskId};

/// Release times per task (indexed by [`TaskId`]), making an [`Instance`]
/// an online problem.
#[derive(Debug, Clone)]
pub struct ReleaseTimes(pub Vec<f64>);

impl ReleaseTimes {
    /// Everything available at time zero — the offline special case.
    pub fn all_zero(inst: &Instance) -> Self {
        ReleaseTimes(vec![0.0; inst.graph.task_count()])
    }

    /// Staggered arrivals: each task is released at
    /// `depth(t) * stagger + jitter`, modeling a workflow whose stages are
    /// submitted progressively.
    pub fn staggered(inst: &Instance, stagger: f64, jitter: impl Fn(usize) -> f64) -> Self {
        let g = &inst.graph;
        let mut level = vec![0usize; g.task_count()];
        for &t in &g.topological_order() {
            let lt = level[t.index()];
            for e in g.successors(t) {
                let l = &mut level[e.task.index()];
                *l = (*l).max(lt + 1);
            }
        }
        ReleaseTimes(
            level
                .iter()
                .enumerate()
                .map(|(i, &l)| l as f64 * stagger + jitter(i))
                .collect(),
        )
    }

    /// Validates a schedule against the release constraint
    /// (`start >= release` for every task, on top of `Schedule::verify`).
    pub fn verify(&self, inst: &Instance, sched: &Schedule) -> Result<(), String> {
        sched.verify(inst).map_err(|e| e.to_string())?;
        for t in inst.graph.tasks() {
            let a = sched.assignment(t);
            let r = self.0[t.index()];
            if a.start + 1e-9 * r.abs().max(1.0) < r {
                return Err(format!("task {t} starts at {} before release {r}", a.start));
            }
        }
        Ok(())
    }
}

/// A non-clairvoyant dispatch policy.
pub trait OnlinePolicy {
    /// Policy name for reports.
    fn name(&self) -> &'static str;
    /// Chooses a `(task, node, start)` among `visible` (non-empty) ready
    /// tasks; `min_start[t]` is the earliest legal start (release-aware).
    fn choose(
        &self,
        b: &ScheduleBuilder<'_>,
        visible: &[TaskId],
        min_start: &dyn Fn(TaskId, NodeId) -> f64,
    ) -> (TaskId, NodeId, f64);
}

/// Greedy earliest-finish dispatch (online MCT).
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineEft;

impl OnlinePolicy for OnlineEft {
    fn name(&self) -> &'static str {
        "OnlineEFT"
    }

    fn choose(
        &self,
        b: &ScheduleBuilder<'_>,
        visible: &[TaskId],
        min_start: &dyn Fn(TaskId, NodeId) -> f64,
    ) -> (TaskId, NodeId, f64) {
        let mut best: Option<(TaskId, NodeId, f64, f64)> = None;
        for &t in visible {
            for v in b.instance().network.nodes() {
                let start = min_start(t, v);
                let finish = start
                    + b.instance()
                        .network
                        .exec_time(b.instance().graph.cost(t), v);
                let better = match best {
                    None => true,
                    Some((_, _, _, bf)) => finish < bf,
                };
                if better {
                    best = Some((t, v, start, finish));
                }
            }
        }
        let (t, v, s, _) = best.expect("visible set is non-empty");
        (t, v, s)
    }
}

/// First-idle-node dispatch (online OLB).
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineOlb;

impl OnlinePolicy for OnlineOlb {
    fn name(&self) -> &'static str {
        "OnlineOLB"
    }

    fn choose(
        &self,
        b: &ScheduleBuilder<'_>,
        visible: &[TaskId],
        min_start: &dyn Fn(TaskId, NodeId) -> f64,
    ) -> (TaskId, NodeId, f64) {
        let v = util::first_idle_node(b.ctx());
        // earliest-released visible task first (FIFO), ties by id
        let t = *visible
            .iter()
            .min_by(|&&a, &&c| min_start(a, v).total_cmp(&min_start(c, v)).then(a.cmp(&c)))
            .expect("visible set is non-empty");
        (t, v, min_start(t, v))
    }
}

/// Runs the online event loop: placement decisions see only released tasks,
/// and every start respects `max(release, data-ready, node-available)`.
pub fn simulate_online(
    inst: &Instance,
    releases: &ReleaseTimes,
    policy: &dyn OnlinePolicy,
) -> Schedule {
    let n = inst.graph.task_count();
    let mut b = ScheduleBuilder::new(inst);
    let mut clock = 0.0f64;
    while b.placed_count() < n {
        let visible: Vec<TaskId> = b
            .ready()
            .iter()
            .copied()
            .filter(|t| releases.0[t.index()] <= clock)
            .collect();
        if visible.is_empty() {
            // advance to the next arrival among ready tasks
            clock = b
                .ready()
                .iter()
                .map(|t| releases.0[t.index()])
                .fold(f64::INFINITY, f64::min);
            continue;
        }
        let min_start = |t: TaskId, v: NodeId| -> f64 {
            let data = b.data_ready_time(t, v);
            let avail = b.earliest_start_append(v, 0.0);
            data.max(avail).max(releases.0[t.index()])
        };
        let (t, v, start) = policy.choose(&b, &visible, &min_start);
        debug_assert!(start >= releases.0[t.index()]);
        b.place(t, v, start);
        clock = clock.max(releases.0[t.index()]);
    }
    b.finish()
}

/// Convenience wrapper: an online policy with fixed releases, viewed as a
/// [`Scheduler`] (useful for plugging into the benchmarking harness when
/// releases are all zero).
pub struct OnlineScheduler<P: OnlinePolicy + Send + Sync> {
    policy: P,
}

impl<P: OnlinePolicy + Send + Sync> OnlineScheduler<P> {
    /// Wraps a policy.
    pub fn new(policy: P) -> Self {
        OnlineScheduler { policy }
    }
}

impl<P: OnlinePolicy + Send + Sync> Scheduler for OnlineScheduler<P> {
    fn name(&self) -> &'static str {
        self.policy.name()
    }

    fn schedule_into(&self, inst: &Instance, _ctx: &mut saga_core::SchedContext) -> Schedule {
        // the online event loop drives its own builder; the shared context
        // is unused (release-time simulation is not a hot path)
        simulate_online(inst, &ReleaseTimes::all_zero(inst), &self.policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::fixtures;

    #[test]
    fn zero_releases_give_valid_schedules_on_smoke_instances() {
        for inst in fixtures::smoke_instances() {
            for policy in [&OnlineEft as &dyn OnlinePolicy, &OnlineOlb] {
                let r = ReleaseTimes::all_zero(&inst);
                let s = simulate_online(&inst, &r, policy);
                r.verify(&inst, &s)
                    .unwrap_or_else(|e| panic!("{}: {e}", policy.name()));
            }
        }
    }

    #[test]
    fn staggered_releases_are_respected() {
        let inst = fixtures::fig1();
        let r = ReleaseTimes::staggered(&inst, 2.0, |i| 0.1 * i as f64);
        for policy in [&OnlineEft as &dyn OnlinePolicy, &OnlineOlb] {
            let s = simulate_online(&inst, &r, policy);
            r.verify(&inst, &s)
                .unwrap_or_else(|e| panic!("{}: {e}", policy.name()));
            for t in inst.graph.tasks() {
                assert!(s.assignment(t).start >= r.0[t.index()] - 1e-9);
            }
        }
    }

    #[test]
    fn online_eft_matches_mct_when_everything_is_released() {
        // with all releases zero and no insertion, OnlineEFT's greedy rule
        // is a ready-set MCT — makespans must be close (not identical: MCT
        // processes in topological order, OnlineEFT picks min finish first);
        // both must at least be valid and finite here
        let inst = fixtures::fig1();
        let on = OnlineScheduler::new(OnlineEft).schedule(&inst);
        let off = crate::Mct.schedule(&inst);
        on.verify(&inst).unwrap();
        assert!(on.makespan().is_finite() && off.makespan().is_finite());
    }

    #[test]
    fn delaying_releases_can_only_hurt() {
        let inst = fixtures::fig1();
        let zero = ReleaseTimes::all_zero(&inst);
        let late = ReleaseTimes::staggered(&inst, 5.0, |_| 0.0);
        let m0 = simulate_online(&inst, &zero, &OnlineEft).makespan();
        let m1 = simulate_online(&inst, &late, &OnlineEft).makespan();
        assert!(m1 >= m0 - 1e-9, "late arrivals produced a faster schedule");
    }

    #[test]
    fn online_price_vs_offline_heft() {
        // the online scheduler can't beat clairvoyant HEFT by much on these
        // instances, and must stay within a sane factor
        for inst in fixtures::smoke_instances() {
            let on = OnlineScheduler::new(OnlineEft).schedule(&inst).makespan();
            let off = crate::Heft.schedule(&inst).makespan();
            if off.is_finite() {
                assert!(on < 50.0 * off + 1e-9, "online {on} vs offline {off}");
            }
        }
    }

    #[test]
    fn clock_advances_through_empty_visibility_windows() {
        // single chain, each task released long after the previous finishes
        let g = saga_core::TaskGraph::chain(&[1.0, 1.0], &[0.0]);
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0], 1.0), g);
        let r = ReleaseTimes(vec![10.0, 20.0]);
        let s = simulate_online(&inst, &r, &OnlineEft);
        assert!(s.assignment(saga_core::TaskId(0)).start >= 10.0);
        assert!(s.assignment(saga_core::TaskId(1)).start >= 20.0);
        r.verify(&inst, &s).unwrap();
    }
}
