//! FastestNode — the paper's simple serial baseline.
//!
//! Schedules every task, in topological order, back-to-back on the single
//! fastest compute node. No communication is ever paid (all data stays
//! local), which is exactly why PISA finds instances where it beats
//! sophisticated schedulers that over-parallelize.

use crate::KernelRun;
use saga_core::{Instance, SchedContext};

/// The FastestNode baseline scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastestNode;

fn serial_loop(ctx: &mut SchedContext) {
    let v = ctx.fastest_node();
    let n = ctx.task_count();
    while ctx.placed_count() < n {
        let t = ctx.ready()[0]; // lowest-id ready = topological order
        let (s, _) = ctx.eft(t, v, false);
        ctx.place(t, v, s);
    }
}

impl KernelRun for FastestNode {
    fn kernel_name(&self) -> &'static str {
        "FastestNode"
    }

    fn run(&self, inst: &Instance, ctx: &mut SchedContext) {
        ctx.reset(inst);
        serial_loop(ctx);
    }

    fn run_recorded(
        &self,
        inst: &Instance,
        ctx: &mut SchedContext,
        trace: &mut saga_core::RunTrace,
        dirty: &saga_core::DirtyRegion,
    ) {
        ctx.reset(inst);
        ctx.begin_recording();
        crate::util::replay_frontier_prefix(ctx, trace, dirty, false, |_, _| false);
        serial_loop(ctx);
        ctx.take_recording(trace);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::fixtures;
    use crate::Scheduler;

    #[test]
    fn schedules_are_valid_on_smoke_instances() {
        for inst in fixtures::smoke_instances() {
            let s = FastestNode.schedule(&inst);
            s.verify(&inst).expect("FastestNode schedule must be valid");
        }
    }

    #[test]
    fn all_tasks_on_the_fastest_node() {
        let inst = fixtures::fig1();
        let s = FastestNode.schedule(&inst);
        let fast = inst.network.fastest_node();
        for t in inst.graph.tasks() {
            assert_eq!(s.assignment(t).node, fast);
        }
    }

    #[test]
    fn makespan_is_total_cost_over_fastest_speed() {
        let inst = fixtures::fig1();
        let s = FastestNode.schedule(&inst);
        let fast = inst.network.fastest_node();
        let expect = inst.graph.total_cost() / inst.network.speed(fast);
        assert!((s.makespan() - expect).abs() < 1e-9);
    }

    #[test]
    fn never_pays_communication() {
        // even with zero-strength links, the serial schedule is finite
        let mut g = saga_core::TaskGraph::new();
        let a = g.add_task("a", 1.0);
        let b = g.add_task("b", 1.0);
        g.add_dependency(a, b, 100.0).unwrap();
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0, 1.0], 0.0), g);
        let s = FastestNode.schedule(&inst);
        assert!((s.makespan() - 2.0).abs() < 1e-12);
    }
}
