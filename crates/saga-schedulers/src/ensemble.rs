//! Ensemble scheduling — the paper's closing future-work suggestion
//! ("running multiple algorithms and choosing the best schedule"),
//! generalizing Duplex from {MinMin, MaxMin} to an arbitrary portfolio.
//!
//! A Workflow Management System can use this to cover heterogeneous client
//! workloads: PISA's pairwise matrix identifies a small portfolio whose
//! *combined* worst case is far below any single member's (see the
//! `scheduler_portfolio` example).

use crate::Scheduler;
use saga_core::{Instance, SchedContext, Schedule};

/// Runs every member scheduler and returns the schedule with the smallest
/// makespan (first member wins ties, so member order is a priority).
pub struct Ensemble {
    members: Vec<Box<dyn Scheduler>>,
}

impl Ensemble {
    /// Builds an ensemble over the given members.
    ///
    /// # Panics
    /// Panics if `members` is empty.
    pub fn new(members: Vec<Box<dyn Scheduler>>) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        Ensemble { members }
    }

    /// The portfolio the `scheduler_portfolio` example typically selects:
    /// HEFT + CPoP + MaxMin (complementary strengths under PISA).
    pub fn default_portfolio() -> Self {
        Ensemble::new(vec![
            Box::new(crate::Heft),
            Box::new(crate::Cpop),
            Box::new(crate::MaxMin),
        ])
    }

    /// Member names, in priority order.
    pub fn member_names(&self) -> Vec<&'static str> {
        self.members.iter().map(|m| m.name()).collect()
    }
}

impl Scheduler for Ensemble {
    fn name(&self) -> &'static str {
        "Ensemble"
    }

    fn schedule_into(&self, inst: &Instance, ctx: &mut SchedContext) -> Schedule {
        let mut best: Option<Schedule> = None;
        for m in &self.members {
            let s = m.schedule_into(inst, ctx);
            let better = match &best {
                None => true,
                Some(b) => s.makespan() < b.makespan(),
            };
            if better {
                best = Some(s);
            }
        }
        best.expect("non-empty ensemble")
    }

    fn makespan_into(&self, inst: &Instance, ctx: &mut SchedContext) -> f64 {
        self.members
            .iter()
            .map(|m| m.makespan_into(inst, ctx))
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::fixtures;

    #[test]
    fn never_worse_than_any_member() {
        let e = Ensemble::default_portfolio();
        for inst in fixtures::smoke_instances() {
            let em = e.schedule(&inst).makespan();
            for name in e.member_names() {
                let m = crate::by_name(name).unwrap().schedule(&inst).makespan();
                assert!(em <= m + 1e-9, "ensemble {em} worse than {name} {m}");
            }
        }
    }

    #[test]
    fn schedules_are_valid() {
        let e = Ensemble::default_portfolio();
        for inst in fixtures::smoke_instances() {
            e.schedule(&inst).verify(&inst).unwrap();
        }
    }

    #[test]
    fn singleton_ensemble_equals_member() {
        let e = Ensemble::new(vec![Box::new(crate::Heft)]);
        let inst = fixtures::fig1();
        assert_eq!(
            e.schedule(&inst).makespan(),
            crate::Heft.schedule(&inst).makespan()
        );
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_panics() {
        Ensemble::new(vec![]);
    }

    #[test]
    fn member_names_preserve_order() {
        let e = Ensemble::default_portfolio();
        assert_eq!(e.member_names(), vec!["HEFT", "CPoP", "MaxMin"]);
        assert_eq!(e.name(), "Ensemble");
    }
}
