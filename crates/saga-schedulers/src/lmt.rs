//! LMT — Levelized Min Time.
//!
//! Another comparator from the HEFT/CPoP evaluation (the PISA paper notes it
//! could not locate the original publication; the standard description is a
//! two-phase *levelized* scheduler). Tasks are partitioned into precedence
//! levels (longest path depth from a source); within each level — whose
//! tasks are mutually independent — tasks are taken largest-cost-first and
//! each is assigned to the node minimizing its completion time.

use crate::{util, Scheduler};
use saga_core::{Instance, Schedule, ScheduleBuilder, TaskId};

/// The Levelized Min Time scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lmt;

/// Longest-path depth of every task from the source frontier.
fn levels(inst: &Instance) -> Vec<usize> {
    let g = &inst.graph;
    let mut level = vec![0usize; g.task_count()];
    for &t in &g.topological_order() {
        let lt = level[t.index()];
        for e in g.successors(t) {
            let l = &mut level[e.task.index()];
            *l = (*l).max(lt + 1);
        }
    }
    level
}

impl Scheduler for Lmt {
    fn name(&self) -> &'static str {
        "LMT"
    }

    fn schedule(&self, inst: &Instance) -> Schedule {
        let level = levels(inst);
        let max_level = level.iter().copied().max().unwrap_or(0);
        let mut b = ScheduleBuilder::new(inst);
        for l in 0..=max_level {
            let mut tier: Vec<TaskId> = inst
                .graph
                .tasks()
                .filter(|t| level[t.index()] == l)
                .collect();
            tier.sort_by(|&a, &c| {
                inst.graph
                    .cost(c)
                    .total_cmp(&inst.graph.cost(a))
                    .then(a.cmp(&c))
            });
            for t in tier {
                let (v, s, _) = util::best_eft_node(&b, t, false);
                b.place(t, v, s);
            }
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::fixtures;

    #[test]
    fn schedules_are_valid_on_smoke_instances() {
        for inst in fixtures::smoke_instances() {
            let s = Lmt.schedule(&inst);
            s.verify(&inst).expect("LMT schedule must be valid");
        }
    }

    #[test]
    fn levels_follow_longest_paths() {
        let inst = fixtures::fig1();
        let l = levels(&inst);
        // t1 (source) 0; t2, t3 at 1; t4 at 2
        assert_eq!(l, vec![0, 1, 1, 2]);
    }

    #[test]
    fn within_level_big_tasks_go_first() {
        // two independent tasks (same level), one node: the bigger starts
        // first under LMT's largest-first tie-breaking
        let mut g = saga_core::TaskGraph::new();
        let small = g.add_task("small", 1.0);
        let big = g.add_task("big", 5.0);
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0], 1.0), g);
        let s = Lmt.schedule(&inst);
        assert!(s.assignment(big).start < s.assignment(small).start);
    }

    #[test]
    fn levelization_can_cost_against_heft() {
        // LMT cannot start a level-2 task before finishing placing level-1
        // tasks, so HEFT is at least as good on the Fig. 1 instance
        let inst = fixtures::fig1();
        let lmt = Lmt.schedule(&inst).makespan();
        let heft = crate::Heft.schedule(&inst).makespan();
        assert!(heft <= lmt + 1e-9);
    }
}
