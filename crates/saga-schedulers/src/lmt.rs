//! LMT — Levelized Min Time.
//!
//! Another comparator from the HEFT/CPoP evaluation (the PISA paper notes it
//! could not locate the original publication; the standard description is a
//! two-phase *levelized* scheduler). Tasks are partitioned into precedence
//! levels (longest path depth from a source); within each level — whose
//! tasks are mutually independent — tasks are taken largest-cost-first and
//! each is assigned to the node minimizing its completion time.

use crate::{util, KernelRun};
use saga_core::{Instance, SchedContext};

/// The Levelized Min Time scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lmt;

/// Longest-path depth of every task from the source frontier (reference
/// implementation used by the unit tests; the scheduler computes the same
/// quantity into pooled buffers).
#[cfg(test)]
fn levels(inst: &Instance) -> Vec<usize> {
    let g = &inst.graph;
    let mut level = vec![0usize; g.task_count()];
    for &t in &g.topological_order() {
        let lt = level[t.index()];
        for e in g.successors(t) {
            let l = &mut level[e.task.index()];
            *l = (*l).max(lt + 1);
        }
    }
    level
}

impl KernelRun for Lmt {
    fn kernel_name(&self) -> &'static str {
        "LMT"
    }

    fn run(&self, inst: &Instance, ctx: &mut SchedContext) {
        ctx.reset(inst);
        // longest-path depth of every task, as exact small floats so the
        // buffer pools cover it
        let mut level = ctx.take_f64();
        level.resize(ctx.task_count(), 0.0);
        for &t in ctx.topo_order() {
            let lt = level[t.index()];
            for (s, _) in ctx.succs(t) {
                let l = &mut level[s.index()];
                *l = l.max(lt + 1.0);
            }
        }
        let max_level = level.iter().copied().fold(0.0f64, f64::max);
        let mut tier = ctx.take_tasks();
        let mut l = 0.0f64;
        while l <= max_level {
            tier.clear();
            tier.extend(ctx.tasks().filter(|t| level[t.index()] == l));
            tier.sort_by(|&a, &c| {
                inst.graph
                    .cost(c)
                    .total_cmp(&inst.graph.cost(a))
                    .then(a.cmp(&c))
            });
            for &t in &tier {
                let (v, s, _) = util::best_eft_node(ctx, t, false);
                ctx.place(t, v, s);
            }
            l += 1.0;
        }
        ctx.give_f64(level);
        ctx.give_tasks(tier);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::fixtures;
    use crate::Scheduler;

    #[test]
    fn schedules_are_valid_on_smoke_instances() {
        for inst in fixtures::smoke_instances() {
            let s = Lmt.schedule(&inst);
            s.verify(&inst).expect("LMT schedule must be valid");
        }
    }

    #[test]
    fn levels_follow_longest_paths() {
        let inst = fixtures::fig1();
        let l = levels(&inst);
        // t1 (source) 0; t2, t3 at 1; t4 at 2
        assert_eq!(l, vec![0, 1, 1, 2]);
    }

    #[test]
    fn within_level_big_tasks_go_first() {
        // two independent tasks (same level), one node: the bigger starts
        // first under LMT's largest-first tie-breaking
        let mut g = saga_core::TaskGraph::new();
        let small = g.add_task("small", 1.0);
        let big = g.add_task("big", 5.0);
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0], 1.0), g);
        let s = Lmt.schedule(&inst);
        assert!(s.assignment(big).start < s.assignment(small).start);
    }

    #[test]
    fn levelization_can_cost_against_heft() {
        // LMT cannot start a level-2 task before finishing placing level-1
        // tasks, so HEFT is at least as good on the Fig. 1 instance
        let inst = fixtures::fig1();
        let lmt = Lmt.schedule(&inst).makespan();
        let heft = crate::Heft.schedule(&inst).makespan();
        assert!(heft <= lmt + 1e-9);
    }
}
