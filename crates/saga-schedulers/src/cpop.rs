//! CPoP — Critical Path on Processor (Topcuoglu, Hariri & Wu 1999).
//!
//! Like HEFT a list scheduler, but (1) the priority of a task is the sum of
//! its upward and downward ranks (its distance from both ends of the graph),
//! and (2) every task on the critical path is committed to the single node
//! that executes the critical path fastest — under the related-machines
//! model, simply the fastest node. Non-critical tasks use insertion-based
//! earliest finish time, as in HEFT — through [`util::best_eft_node`]'s
//! fused row-kernel formulation (`SAGA_NO_EFT_ROW=1` forces the scalar
//! per-node sweep). Complexity `O(|T|^2 |V|)`.

use crate::{util, KernelRun};
use saga_core::{DirtyRegion, Instance, RunTrace, SchedContext, TaskId};

/// The CPoP scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cpop;

/// The highest-priority ready task (CPoP's per-step selection): maximum
/// `prio`, smaller id on ties. Shared by the full run and the incremental
/// replay verification so the two paths can never diverge on tie order.
fn select(ctx: &SchedContext, prio: &impl Fn(TaskId) -> f64) -> TaskId {
    *ctx.ready()
        .iter()
        .max_by(|&&a, &&c| prio(a).total_cmp(&prio(c)).then(c.cmp(&a)))
        .expect("ready set cannot be empty in a DAG")
}

/// Critical-path membership from a priority and the critical length
/// (matches `ranking::critical_path`'s tolerance rule).
fn on_path(prio: f64, length: f64, tol: f64) -> bool {
    (prio - length).abs() <= tol || prio.is_infinite() && length.is_infinite()
}

impl Cpop {
    /// The run body, optionally replaying a recorded trace first. The
    /// priority vector and critical length are always recomputed fresh;
    /// the replay re-applies a recorded placement only while (a) the fresh
    /// selection rule picks the same task, (b) that task's own placement
    /// inputs are untouched, and (c) its critical-path membership — which
    /// decides the placement *branch* — is unchanged between the recorded
    /// priorities (kept in the trace's aux row) and the fresh ones.
    fn run_impl(
        &self,
        inst: &Instance,
        ctx: &mut SchedContext,
        mut replay: Option<(&mut RunTrace, &DirtyRegion)>,
    ) {
        ctx.reset(inst);
        let mut up = ctx.take_f64();
        let mut down = ctx.take_f64();
        ctx.upward_ranks_into(&mut up);
        ctx.downward_ranks_into(&mut down);
        // fold the two rank vectors into one priority vector up front: the
        // selection loop compares priorities O(ready) times per step, and
        // the summed vector doubles as the trace's aux row (same `u + d`
        // adds, in the same order, as the lazy per-query form)
        for (i, a) in up.iter_mut().enumerate() {
            *a += down[i];
        }
        let length = up
            .iter()
            .fold(0.0f64, |acc, &l| if l > acc { l } else { acc });
        let tol = 1e-9 * length.abs().max(1.0);
        let cp_node = ctx.fastest_node();
        let prio = |t: TaskId| up[t.index()];

        let n = ctx.task_count();
        if let Some((trace, dirty)) = replay.as_mut() {
            ctx.begin_recording();
            if !dirty.is_full() && trace.matches(n, ctx.node_count()) && trace.aux().len() == n {
                let old_length = trace.aux_scalar();
                let old_tol = 1e-9 * old_length.abs().max(1.0);
                for k in 0..n {
                    let t = select(ctx, &prio);
                    if t != trace.task(k)
                        || dirty.contains(t)
                        || on_path(prio(t), length, tol)
                            != on_path(trace.aux()[t.index()], old_length, old_tol)
                    {
                        break;
                    }
                    ctx.place(t, trace.node(k), trace.start(k));
                }
            }
        }
        while ctx.placed_count() < n {
            let t = select(ctx, &prio);
            if on_path(prio(t), length, tol) {
                let (s, _) = ctx.eft(t, cp_node, true);
                ctx.place(t, cp_node, s);
            } else {
                let (v, s, _) = util::best_eft_node(ctx, t, true);
                ctx.place(t, v, s);
            }
        }
        if let Some((trace, _)) = replay {
            ctx.take_recording(trace);
            trace.set_aux_scalar(length);
            trace.set_aux(&up);
        }
        ctx.give_f64(up);
        ctx.give_f64(down);
    }
}

impl KernelRun for Cpop {
    fn kernel_name(&self) -> &'static str {
        "CPoP"
    }

    fn run(&self, inst: &Instance, ctx: &mut SchedContext) {
        self.run_impl(inst, ctx, None);
    }

    fn run_recorded(
        &self,
        inst: &Instance,
        ctx: &mut SchedContext,
        trace: &mut RunTrace,
        dirty: &DirtyRegion,
    ) {
        self.run_impl(inst, ctx, Some((trace, dirty)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::fixtures;
    use crate::Scheduler;
    use saga_core::{ranking, TaskId};

    #[test]
    fn schedules_are_valid_on_smoke_instances() {
        for inst in fixtures::smoke_instances() {
            let s = Cpop.schedule(&inst);
            s.verify(&inst).expect("CPoP schedule must be valid");
        }
    }

    #[test]
    fn critical_path_tasks_share_the_fastest_node() {
        let inst = fixtures::fig1();
        let s = Cpop.schedule(&inst);
        let cp = ranking::critical_path(&inst);
        let fast = inst.network.fastest_node();
        for t in &cp.tasks {
            assert_eq!(
                s.assignment(*t).node,
                fast,
                "critical task {t} off the CP node"
            );
        }
    }

    #[test]
    fn chain_collapses_to_fastest_node() {
        // A pure chain *is* the critical path, so CPoP serializes it on the
        // fastest node.
        let g = saga_core::TaskGraph::chain(&[1.0, 2.0, 1.0], &[5.0, 5.0]);
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0, 2.0], 0.1), g);
        let s = Cpop.schedule(&inst);
        for t in inst.graph.tasks() {
            assert_eq!(s.assignment(t).node, saga_core::NodeId(1));
        }
        assert!((s.makespan() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fig3_cpop_serializes_on_modified_network() {
        // The paper's Fig. 3e/3g: CPoP places the whole graph on one node,
        // makespan 15 (5 tasks x cost 3 / speed 1), on both networks.
        for inst in [fixtures::fig3_original(), fixtures::fig3_modified()] {
            let s = Cpop.schedule(&inst);
            s.verify(&inst).unwrap();
            assert!(
                (s.makespan() - 15.0).abs() < 1e-9,
                "CPoP fig3 makespan {}",
                s.makespan()
            );
        }
    }

    #[test]
    fn fig3_variant_flip_cpop_beats_heft_after_link_weakening() {
        // The paper's illustrative point (Fig. 3): a minor network change —
        // weakening node 3's links — makes HEFT lose badly to CPoP.
        let orig = fixtures::fig3_variant_original();
        let modif = fixtures::fig3_variant_modified();
        let r_orig = crate::Heft.schedule(&orig).makespan() / Cpop.schedule(&orig).makespan();
        let heft_mod = crate::Heft.schedule(&modif).makespan();
        let cpop_mod = Cpop.schedule(&modif).makespan();
        assert!(
            cpop_mod < heft_mod,
            "expected CPoP ({cpop_mod}) to beat HEFT ({heft_mod}) on the weakened network"
        );
        assert!(
            heft_mod / cpop_mod > r_orig + 0.1,
            "weakening links should widen HEFT's gap: {r_orig} -> {}",
            heft_mod / cpop_mod
        );
    }

    #[test]
    fn identical_independent_tasks_all_tie_onto_the_cp_node() {
        // With exactly equal priorities every task is in the critical set,
        // so CPoP serializes them — the behavior visible in the paper's
        // Fig. 3e/3g where all five tasks land on one node.
        let mut g = saga_core::TaskGraph::new();
        g.add_task("a", 1.0);
        g.add_task("b", 1.0);
        g.add_task("c", 1.0);
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0, 1.0, 1.0], 1.0), g);
        let s = Cpop.schedule(&inst);
        assert!((s.makespan() - 3.0).abs() < 1e-9);
        let n0 = s.assignment(TaskId(0)).node;
        for t in inst.graph.tasks() {
            assert_eq!(s.assignment(t).node, n0);
        }
    }
}
