//! # saga-schedulers
//!
//! The 17 task-graph scheduling algorithms of the paper's Table I, all
//! implemented against one [`Scheduler`] trait on top of `saga-core`'s
//! [`ScheduleBuilder`](saga_core::ScheduleBuilder). The 15 polynomial-time
//! heuristics are what the paper benchmarks (Fig. 2) and compares
//! adversarially (Fig. 4); the two exponential reference solvers
//! (`BruteForce` and the SMT-substitute `BnbSearch`) are excluded from those
//! experiments exactly as in the paper.

#![warn(missing_docs)]

use saga_core::{Instance, Schedule};

mod bil;
mod bnb;
mod brute_force;
mod cpop;
mod duplex;
mod ensemble;
mod ert;
mod etf;
mod fastest_node;
mod fcp;
mod flb;
mod gdl;
mod lmt;
mod heft;
mod maxmin;
mod mct;
mod mh;
mod met;
mod minmin;
mod olb;
pub mod online;
pub mod util;
mod wba;

pub use bil::Bil;
pub use bnb::BnbSearch;
pub use brute_force::BruteForce;
pub use cpop::Cpop;
pub use duplex::Duplex;
pub use ensemble::Ensemble;
pub use ert::Ert;
pub use etf::Etf;
pub use fastest_node::FastestNode;
pub use fcp::Fcp;
pub use flb::Flb;
pub use gdl::Gdl;
pub use lmt::Lmt;
pub use heft::Heft;
pub use maxmin::MaxMin;
pub use mct::Mct;
pub use mh::Mh;
pub use met::Met;
pub use minmin::MinMin;
pub use olb::Olb;
pub use wba::Wba;

/// A task-graph scheduling algorithm.
///
/// Implementations must return a schedule that passes
/// [`Schedule::verify`](saga_core::Schedule::verify) for every instance with
/// at least one node — including degenerate instances with zero weights
/// (times may be infinite, but constraints still hold).
pub trait Scheduler: Send + Sync {
    /// The abbreviation used in the paper's tables (e.g. `"HEFT"`).
    fn name(&self) -> &'static str;
    /// Produces a complete schedule for `inst`.
    fn schedule(&self, inst: &Instance) -> Schedule;
}

/// The 15 polynomial-time schedulers benchmarked in the paper, in the
/// row/column order of its Fig. 2 and Fig. 4 (alphabetical).
pub fn benchmark_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Bil),
        Box::new(Cpop),
        Box::new(Duplex),
        Box::new(Etf),
        Box::new(Fcp),
        Box::new(Flb),
        Box::new(FastestNode),
        Box::new(Gdl),
        Box::new(Heft),
        Box::new(Mct),
        Box::new(Met),
        Box::new(MaxMin),
        Box::new(MinMin),
        Box::new(Olb),
        Box::new(Wba::default()),
    ]
}

/// The subset used by the paper's Section VII application-specific
/// experiments: FastestNode, HEFT, CPoP, MaxMin, MinMin, WBA.
pub fn app_specific_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Cpop),
        Box::new(FastestNode),
        Box::new(Heft),
        Box::new(MaxMin),
        Box::new(MinMin),
        Box::new(Wba::default()),
    ]
}

/// The exponential-time reference solvers (the paper's BruteForce and SMT),
/// excluded from benchmarking/adversarial experiments.
pub fn exact_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![Box::new(BruteForce::default()), Box::new(BnbSearch::default())]
}

/// Historical comparator baselines from the papers cited in Table I (MH and
/// LMT from the HEFT/CPoP evaluation, ERT from the FCP/FLB evaluation) —
/// not part of the paper's 15-scheduler roster, provided for reproducing
/// those original comparisons.
pub fn historical_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![Box::new(Ert), Box::new(Lmt), Box::new(Mh)]
}

/// Looks a scheduler up by its Table-I abbreviation (case-insensitive).
pub fn by_name(name: &str) -> Option<Box<dyn Scheduler>> {
    let mut all = benchmark_schedulers();
    all.extend(exact_schedulers());
    all.extend(historical_schedulers());
    all.into_iter()
        .find(|s| s.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_roster_matches_paper() {
        let names: Vec<&str> = benchmark_schedulers().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "BIL",
                "CPoP",
                "Duplex",
                "ETF",
                "FCP",
                "FLB",
                "FastestNode",
                "GDL",
                "HEFT",
                "MCT",
                "MET",
                "MaxMin",
                "MinMin",
                "OLB",
                "WBA"
            ]
        );
    }

    #[test]
    fn app_specific_roster_matches_section_vii() {
        let names: Vec<&str> = app_specific_schedulers().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec!["CPoP", "FastestNode", "HEFT", "MaxMin", "MinMin", "WBA"]
        );
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert_eq!(by_name("heft").unwrap().name(), "HEFT");
        assert_eq!(by_name("CPOP").unwrap().name(), "CPoP");
        assert_eq!(by_name("bnb").unwrap().name(), "BnB");
        assert!(by_name("nope").is_none());
    }
}
