//! # saga-schedulers
//!
//! The 17 task-graph scheduling algorithms of the paper's Table I, all
//! implemented against one [`Scheduler`] trait on top of `saga-core`'s
//! [`ScheduleBuilder`](saga_core::ScheduleBuilder). The 15 polynomial-time
//! heuristics are what the paper benchmarks (Fig. 2) and compares
//! adversarially (Fig. 4); the two exponential reference solvers
//! (`BruteForce` and the SMT-substitute `BnbSearch`) are excluded from those
//! experiments exactly as in the paper.

#![warn(missing_docs)]

use saga_core::{DirtyRegion, Instance, RunTrace, SchedContext, Schedule};

mod bil;
mod bnb;
mod brute_force;
mod cpop;
mod duplex;
mod ensemble;
mod ert;
mod etf;
mod fastest_node;
mod fcp;
mod flb;
mod gdl;
mod heft;
mod lmt;
mod maxmin;
mod mct;
mod met;
mod mh;
mod minmin;
mod olb;
pub mod online;
pub mod util;
mod wba;

pub use bil::Bil;
pub use bnb::BnbSearch;
pub use brute_force::BruteForce;
pub use cpop::Cpop;
pub use duplex::Duplex;
pub use ensemble::Ensemble;
pub use ert::Ert;
pub use etf::Etf;
pub use fastest_node::FastestNode;
pub use fcp::Fcp;
pub use flb::Flb;
pub use gdl::Gdl;
pub use heft::Heft;
pub use lmt::Lmt;
pub use maxmin::MaxMin;
pub use mct::Mct;
pub use met::Met;
pub use mh::Mh;
pub use minmin::MinMin;
pub use olb::Olb;
pub use wba::Wba;

/// A task-graph scheduling algorithm.
///
/// Implementations must return a schedule that passes
/// [`Schedule::verify`](saga_core::Schedule::verify) for every instance with
/// at least one node — including degenerate instances with zero weights
/// (times may be infinite, but constraints still hold).
///
/// [`schedule_into`](Scheduler::schedule_into) is the hot-path entry point:
/// it reuses a caller-owned [`SchedContext`] so repeated evaluations (PISA
/// runs thousands per cell) allocate nothing after warm-up. The plain
/// [`schedule`](Scheduler::schedule) convenience spins up a fresh context
/// per call and is what one-shot callers and older code use.
pub trait Scheduler: Send + Sync {
    /// The abbreviation used in the paper's tables (e.g. `"HEFT"`).
    fn name(&self) -> &'static str;

    /// Produces a complete schedule for `inst`, reusing `ctx`'s buffers.
    /// Implementations reset `ctx` themselves; the caller just keeps the
    /// context alive between calls.
    fn schedule_into(&self, inst: &Instance, ctx: &mut SchedContext) -> Schedule;

    /// Produces a complete schedule for `inst` with a fresh context.
    fn schedule(&self, inst: &Instance) -> Schedule {
        let mut ctx = SchedContext::new();
        self.schedule_into(inst, &mut ctx)
    }

    /// The makespan of the schedule for `inst`, skipping [`Schedule`]
    /// materialization where the implementation can (the adversarial
    /// annealer only needs the ratio of two makespans).
    fn makespan_into(&self, inst: &Instance, ctx: &mut SchedContext) -> f64 {
        self.schedule_into(inst, ctx).makespan()
    }

    /// Incremental delta-evaluation entry point: like
    /// [`makespan_into`](Scheduler::makespan_into), but may reuse `trace` —
    /// this scheduler's recorded previous run — to replay the unchanged
    /// placement prefix, and records the new run back into `trace`.
    ///
    /// Contract: `trace` must come from this scheduler's previous
    /// incremental call on the *same evolving instance*, and `dirty` must
    /// cover every change to `inst` since that call (pass
    /// [`DirtyRegion::full`] when unknown — e.g. for a brand-new instance).
    /// Implementations replay only when the result is provably bit-identical
    /// to a full run; the default ignores the trace and runs from scratch.
    fn makespan_incremental(
        &self,
        inst: &Instance,
        ctx: &mut SchedContext,
        trace: &mut RunTrace,
        dirty: &DirtyRegion,
    ) -> f64 {
        let _ = dirty;
        trace.invalidate();
        self.makespan_into(inst, ctx)
    }

    /// [`schedule_into`](Scheduler::schedule_into) with the incremental
    /// contract of [`makespan_incremental`](Scheduler::makespan_incremental)
    /// — the metric-objective cells need the materialized [`Schedule`].
    fn schedule_incremental_into(
        &self,
        inst: &Instance,
        ctx: &mut SchedContext,
        trace: &mut RunTrace,
        dirty: &DirtyRegion,
    ) -> Schedule {
        let _ = dirty;
        trace.invalidate();
        self.schedule_into(inst, ctx)
    }
}

/// List schedulers implemented directly on the [`SchedContext`] kernel:
/// one `run` that resets the context and places every task. The blanket
/// [`Scheduler`] impl derives both entry points from it, so `schedule_into`
/// materializes the [`Schedule`] while `makespan_into` reads the makespan
/// straight off the context.
pub(crate) trait KernelRun: Send + Sync {
    /// The abbreviation used in the paper's tables.
    fn kernel_name(&self) -> &'static str;
    /// Resets `ctx` for `inst` and places every task.
    fn run(&self, inst: &Instance, ctx: &mut SchedContext);

    /// [`run`](KernelRun::run) with placement recording into `trace`.
    /// Schedulers that support incremental delta-evaluation replay the
    /// trace's unchanged prefix (per `dirty`, see [`Scheduler::
    /// makespan_incremental`]) before falling back to their decision loop;
    /// the default invalidates the trace and runs from scratch (schedulers
    /// whose structure doesn't fit a single recorded pass, e.g. Duplex's
    /// best-of-two, stay on this path).
    fn run_recorded(
        &self,
        inst: &Instance,
        ctx: &mut SchedContext,
        trace: &mut RunTrace,
        dirty: &DirtyRegion,
    ) {
        let _ = dirty;
        trace.invalidate();
        self.run(inst, ctx);
    }
}

impl<T: KernelRun> Scheduler for T {
    fn name(&self) -> &'static str {
        self.kernel_name()
    }

    fn schedule_into(&self, inst: &Instance, ctx: &mut SchedContext) -> Schedule {
        self.run(inst, ctx);
        ctx.snapshot_schedule()
    }

    fn makespan_into(&self, inst: &Instance, ctx: &mut SchedContext) -> f64 {
        self.run(inst, ctx);
        // same completeness guard Schedule materialization enforces — an
        // incomplete placement must never turn into a quietly small makespan
        assert_eq!(
            ctx.placed_count(),
            ctx.task_count(),
            "scheduler left tasks unplaced"
        );
        ctx.current_makespan()
    }

    fn makespan_incremental(
        &self,
        inst: &Instance,
        ctx: &mut SchedContext,
        trace: &mut RunTrace,
        dirty: &DirtyRegion,
    ) -> f64 {
        // nothing changed since the recorded run: its makespan still holds
        if dirty.is_clean() && trace.matches(inst.graph.task_count(), inst.network.node_count()) {
            return trace.makespan();
        }
        self.run_recorded(inst, ctx, trace, dirty);
        assert_eq!(
            ctx.placed_count(),
            ctx.task_count(),
            "scheduler left tasks unplaced"
        );
        let m = ctx.current_makespan();
        if trace.is_valid() {
            trace.set_makespan(m);
        }
        m
    }

    fn schedule_incremental_into(
        &self,
        inst: &Instance,
        ctx: &mut SchedContext,
        trace: &mut RunTrace,
        dirty: &DirtyRegion,
    ) -> Schedule {
        // a clean region still needs materialization: the replay path then
        // replays the whole trace (the dirty set never reaches the frontier)
        self.run_recorded(inst, ctx, trace, dirty);
        if trace.is_valid() {
            trace.set_makespan(ctx.current_makespan());
        }
        ctx.snapshot_schedule()
    }
}

/// The 15 polynomial-time schedulers benchmarked in the paper, in the
/// row/column order of its Fig. 2 and Fig. 4 (alphabetical).
pub fn benchmark_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Bil),
        Box::new(Cpop),
        Box::new(Duplex),
        Box::new(Etf),
        Box::new(Fcp),
        Box::new(Flb),
        Box::new(FastestNode),
        Box::new(Gdl),
        Box::new(Heft),
        Box::new(Mct),
        Box::new(Met),
        Box::new(MaxMin),
        Box::new(MinMin),
        Box::new(Olb),
        Box::new(Wba::default()),
    ]
}

/// The subset used by the paper's Section VII application-specific
/// experiments: FastestNode, HEFT, CPoP, MaxMin, MinMin, WBA.
pub fn app_specific_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Cpop),
        Box::new(FastestNode),
        Box::new(Heft),
        Box::new(MaxMin),
        Box::new(MinMin),
        Box::new(Wba::default()),
    ]
}

/// The exponential-time reference solvers (the paper's BruteForce and SMT),
/// excluded from benchmarking/adversarial experiments.
pub fn exact_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(BruteForce::default()),
        Box::new(BnbSearch::default()),
    ]
}

/// Historical comparator baselines from the papers cited in Table I (MH and
/// LMT from the HEFT/CPoP evaluation, ERT from the FCP/FLB evaluation) —
/// not part of the paper's 15-scheduler roster, provided for reproducing
/// those original comparisons.
pub fn historical_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![Box::new(Ert), Box::new(Lmt), Box::new(Mh)]
}

/// A scheduler constructor in the [`by_name`] roster table.
type SchedulerCtor = fn() -> Box<dyn Scheduler>;

/// Static name table backing [`by_name`]: every scheduler the roster
/// functions can construct, without boxing the whole roster per lookup.
static ROSTER: &[(&str, SchedulerCtor)] = &[
    ("BIL", || Box::new(Bil)),
    ("CPoP", || Box::new(Cpop)),
    ("Duplex", || Box::new(Duplex)),
    ("ETF", || Box::new(Etf)),
    ("FCP", || Box::new(Fcp)),
    ("FLB", || Box::new(Flb)),
    ("FastestNode", || Box::new(FastestNode)),
    ("GDL", || Box::new(Gdl)),
    ("HEFT", || Box::new(Heft)),
    ("MCT", || Box::new(Mct)),
    ("MET", || Box::new(Met)),
    ("MaxMin", || Box::new(MaxMin)),
    ("MinMin", || Box::new(MinMin)),
    ("OLB", || Box::new(Olb)),
    ("WBA", || Box::new(Wba::default())),
    ("BruteForce", || Box::new(BruteForce::default())),
    ("BnB", || Box::new(BnbSearch::default())),
    ("ERT", || Box::new(Ert)),
    ("LMT", || Box::new(Lmt)),
    ("MH", || Box::new(Mh)),
];

/// Looks a scheduler up by its Table-I abbreviation (case-insensitive),
/// constructing only the match (the table above is static — no roster-wide
/// boxing per lookup).
pub fn by_name(name: &str) -> Option<Box<dyn Scheduler>> {
    ROSTER
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, ctor)| ctor())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_roster_matches_paper() {
        let names: Vec<&str> = benchmark_schedulers().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "BIL",
                "CPoP",
                "Duplex",
                "ETF",
                "FCP",
                "FLB",
                "FastestNode",
                "GDL",
                "HEFT",
                "MCT",
                "MET",
                "MaxMin",
                "MinMin",
                "OLB",
                "WBA"
            ]
        );
    }

    #[test]
    fn app_specific_roster_matches_section_vii() {
        let names: Vec<&str> = app_specific_schedulers().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec!["CPoP", "FastestNode", "HEFT", "MaxMin", "MinMin", "WBA"]
        );
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert_eq!(by_name("heft").unwrap().name(), "HEFT");
        assert_eq!(by_name("CPOP").unwrap().name(), "CPoP");
        assert_eq!(by_name("bnb").unwrap().name(), "BnB");
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn by_name_table_covers_every_roster_scheduler() {
        // the static ROSTER is hand-maintained; keep it in lockstep with the
        // roster constructors so lookups never silently miss a scheduler
        let mut all = benchmark_schedulers();
        all.extend(exact_schedulers());
        all.extend(historical_schedulers());
        for s in &all {
            let found = by_name(s.name())
                .unwrap_or_else(|| panic!("{} missing from the by_name table", s.name()));
            assert_eq!(found.name(), s.name());
        }
        assert_eq!(ROSTER.len(), all.len(), "extra or stale by_name entries");
    }
}
