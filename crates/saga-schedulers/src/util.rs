//! Shared helpers for list schedulers, plus reusable test fixtures.
//!
//! All helpers operate on the [`SchedContext`] kernel; builder-based callers
//! reach it through [`ScheduleBuilder::ctx`](saga_core::ScheduleBuilder::ctx).

use saga_core::{DirtyRegion, NodeId, RunTrace, SchedContext, TaskId};

/// Stack-buffer capacity for per-node scratch in the selection helpers;
/// networks wider than this fall back to per-node queries.
pub(crate) const STACK_NODES: usize = 32;

/// Minimum network width for the fused row formulation to pay: below this
/// the compose stays scalar (see the AVX dispatch gate in `saga-core`) and
/// materializing row buffers loses to the register-resident comparator
/// loops, so narrow networks keep the scalar per-node path — the same code
/// `SAGA_NO_EFT_ROW=1` forces everywhere. Bit-identical either way.
pub(crate) const WIDE_NODES: usize = 8;

/// Whether the selection helpers should take the fused row path for an
/// `nv`-node network: row kernels enabled and the width inside the
/// `[WIDE_NODES, STACK_NODES]` band where the vectorized compose beats the
/// scalar comparator loop and the scratch rows fit on the stack.
#[inline]
pub(crate) fn fused_rows_profitable(nv: usize) -> bool {
    saga_core::eft_rows_enabled() && (WIDE_NODES..=STACK_NODES).contains(&nv)
}

/// Cached data-ready state for *append-only* frontier sweeps (MinMin/MaxMin,
/// ETF, ERT, GDL, WBA, FLB): a ready task's data-ready times never change
/// (its predecessors are all placed), so each task's row is computed exactly
/// once — and every `(start, finish)` the sweep compares is recomposed as
/// `tail.max(ready) + duration` from that row, the kernel's maintained
/// append-tail row ([`SchedContext::append_tails`]) and the cached execution
/// row, division-free and bit-identical to the direct queries. With the row
/// kernels enabled the recompose is one branchless fused sweep
/// ([`Self::fused_rows`]); the comparator form ([`Self::best_node`]) is the
/// scalar fallback.
pub(crate) struct FrontierSweep {
    /// `drt[t * |V| + v]`, valid for tasks that have entered the ready set.
    drt: Vec<f64>,
}

impl FrontierSweep {
    /// Builds the cache (buffer from the context pools) and fills the rows
    /// of the currently ready tasks. Node tails live in the kernel's
    /// maintained append-tail row, so a sweep may start mid-run — after an
    /// incremental replay of an append-only placement prefix — as well as
    /// from a clean context.
    pub fn new(ctx: &mut SchedContext) -> Self {
        let nv = ctx.node_count();
        let mut drt = ctx.take_f64();
        drt.resize(ctx.task_count() * nv, 0.0);
        let mut sweep = FrontierSweep { drt };
        for &t in ctx.ready() {
            sweep.fill_row(ctx, t);
        }
        sweep
    }

    fn fill_row(&mut self, ctx: &SchedContext, t: TaskId) {
        let nv = ctx.node_count();
        ctx.data_ready_times_into(t, &mut self.drt[t.index() * nv..][..nv]);
    }

    /// The append-only start of `t` on node `v` — identical to
    /// `ctx.earliest_start_append(v, ctx.data_ready_time(t, v))`.
    #[inline]
    pub fn start(&self, ctx: &SchedContext, t: TaskId, v: usize) -> f64 {
        ctx.append_tails()[v].max(self.drt[t.index() * ctx.node_count() + v])
    }

    /// The cached data-ready row of a ready task — element `v` is identical
    /// to `ctx.data_ready_time(t, NodeId(v))`.
    #[inline]
    pub fn row(&self, nv: usize, t: TaskId) -> &[f64] {
        &self.drt[t.index() * nv..][..nv]
    }

    /// Records a placement made by the owning sweep: fills the rows of
    /// successors that just became ready (the kernel maintains the node
    /// tails itself).
    pub fn note_placed(&mut self, ctx: &SchedContext, t: TaskId) {
        for (s, _) in ctx.succs(t) {
            if !ctx.is_placed(s) && ctx.is_ready(s) {
                self.fill_row(ctx, s);
            }
        }
    }

    /// The fused `(start, finish)` rows of ready task `t` over all nodes,
    /// into caller scratch: the cached data-ready row composed elementwise
    /// with the kernel's append-tail row and the execution row — the same
    /// AVX-dispatched compose [`SchedContext::eft_row_append_into`] uses,
    /// minus the data-ready pass the sweep already cached. Element `v` is
    /// bit-identical to [`Self::start`] / `start + duration`.
    #[inline]
    pub fn fused_rows(
        &self,
        ctx: &SchedContext,
        t: TaskId,
        starts: &mut [f64],
        finishes: &mut [f64],
    ) {
        let nv = ctx.node_count();
        saga_core::compose_append_rows_from(
            &self.drt[t.index() * nv..][..nv],
            ctx.append_tails(),
            ctx.exec_row(t),
            starts,
            finishes,
        );
    }

    /// The best node for `t` under `better((start, finish), (best_start,
    /// best_finish))`, scanning nodes in ascending id order (first win on
    /// ties) over the cached rows. Shared by the MinMin/MaxMin and ETF
    /// sweeps, which differ only in this comparator; the scalar fallback of
    /// [`Self::best_node_eft`] / [`Self::best_node_est`].
    pub fn best_node(
        &self,
        ctx: &SchedContext,
        t: TaskId,
        better: impl Fn((f64, f64), (f64, f64)) -> bool,
    ) -> (NodeId, f64, f64) {
        let mut best: Option<(NodeId, f64, f64)> = None;
        for (v, &duration) in ctx.exec_row(t).iter().enumerate() {
            let s = self.start(ctx, t, v);
            let f = s + duration;
            let take = match best {
                None => true,
                Some((_, bs, bf)) => better((s, f), (bs, bf)),
            };
            if take {
                best = Some((NodeId(v as u32), s, f));
            }
        }
        best.expect("network has at least one node")
    }

    /// [`Self::best_node`] under the earliest-finish comparator
    /// (`f < bf`, lowest node id on ties) as one fused row compose plus the
    /// lowest-index argmin — bit-identical to the comparator form, which
    /// wide networks and the `SAGA_NO_EFT_ROW` path still take.
    pub fn best_node_eft(&self, ctx: &SchedContext, t: TaskId) -> (NodeId, f64, f64) {
        let nv = ctx.node_count();
        if !(WIDE_NODES..=STACK_NODES).contains(&nv) {
            return self.best_node(ctx, t, |(_, f), (_, bf)| f < bf);
        }
        let mut starts = [0.0f64; STACK_NODES];
        let mut finishes = [0.0f64; STACK_NODES];
        self.fused_rows(ctx, t, &mut starts[..nv], &mut finishes[..nv]);
        let v = saga_core::argmin_finish(&finishes[..nv]);
        (v, starts[v.index()], finishes[v.index()])
    }

    /// [`Self::best_node`] under the earliest-start comparator
    /// (`s < bs || (s == bs && f < bf)`) as one fused row compose plus the
    /// lexicographic argmin — bit-identical to the comparator form.
    pub fn best_node_est(&self, ctx: &SchedContext, t: TaskId) -> (NodeId, f64, f64) {
        let nv = ctx.node_count();
        if !(WIDE_NODES..=STACK_NODES).contains(&nv) {
            return self.best_node(ctx, t, |(s, f), (bs, bf)| s < bs || (s == bs && f < bf));
        }
        let mut starts = [0.0f64; STACK_NODES];
        let mut finishes = [0.0f64; STACK_NODES];
        self.fused_rows(ctx, t, &mut starts[..nv], &mut finishes[..nv]);
        let v = saga_core::argmin_start_finish(&starts[..nv], &finishes[..nv]);
        (v, starts[v.index()], finishes[v.index()])
    }

    /// Returns the buffer to the context pool.
    pub fn release(self, ctx: &mut SchedContext) {
        ctx.give_f64(self.drt);
    }
}

/// The node minimizing the earliest finish time of `t`, with the
/// corresponding `(start, finish)`. Ties go to the lower node id.
///
/// With the row kernels enabled, append-policy queries are one fused
/// [`SchedContext::eft_row_append_into`] pass plus the lowest-index argmin,
/// and insertion-policy queries run the pruned gap-scan loop over the
/// batched data-ready row; both reproduce the full per-node sweep bit for
/// bit (a node only wins on a strictly smaller finish, and the true finish
/// never beats the `data_ready + duration` skip bound). Networks outside
/// the `[WIDE_NODES, STACK_NODES]` profitability band and the
/// `SAGA_NO_EFT_ROW` path take the scalar per-node formulation.
pub fn best_eft_node(ctx: &SchedContext, t: TaskId, insertion: bool) -> (NodeId, f64, f64) {
    let nv = ctx.node_count();
    if fused_rows_profitable(nv) {
        let mut starts = [0.0f64; STACK_NODES];
        let mut finishes = [0.0f64; STACK_NODES];
        if !insertion {
            ctx.eft_row_append_into(t, &mut starts[..nv], &mut finishes[..nv]);
            let v = saga_core::argmin_finish(&finishes[..nv]);
            return (v, starts[v.index()], finishes[v.index()]);
        }
        // insertion: the gap scans stay per node (pruned by the incumbent
        // bound), fed from one batched data-ready row pass
        ctx.data_ready_times_into(t, &mut starts[..nv]);
        let exec = ctx.exec_row(t);
        let (mut best, mut bs, mut bf) = (usize::MAX, 0.0f64, f64::INFINITY);
        for (v, (&ready, &duration)) in starts[..nv].iter().zip(exec).enumerate() {
            if best != usize::MAX && ready + duration >= bf {
                continue;
            }
            let s = ctx.earliest_start_insertion(NodeId(v as u32), ready, duration);
            let f = s + duration;
            if best == usize::MAX || f < bf {
                best = v;
                bs = s;
                bf = f;
            }
        }
        assert!(best != usize::MAX, "network has at least one node");
        return (NodeId(best as u32), bs, bf);
    }
    best_eft_node_scalar(ctx, t, insertion)
}

/// The pre-row-kernel formulation of [`best_eft_node`]: per-node queries
/// (batched data-ready row on narrow networks) with the same skip bound.
fn best_eft_node_scalar(ctx: &SchedContext, t: TaskId, insertion: bool) -> (NodeId, f64, f64) {
    let mut ready_buf = [0.0f64; STACK_NODES];
    let nv = ctx.node_count();
    let batched = nv <= STACK_NODES;
    if batched {
        ctx.data_ready_times_into(t, &mut ready_buf[..nv]);
    }
    let mut best: Option<(NodeId, f64, f64)> = None;
    for v in ctx.nodes() {
        let ready = if batched {
            ready_buf[v.index()]
        } else {
            ctx.data_ready_time(t, v)
        };
        let duration = ctx.exec_time(t, v);
        if let Some((_, _, bf)) = best {
            if ready + duration >= bf {
                continue;
            }
        }
        // same composition as `ctx.eft`, reusing the ready time computed
        // for the bound
        let s = if insertion {
            ctx.earliest_start_insertion(v, ready, duration)
        } else {
            ctx.earliest_start_append(v, ready)
        };
        let f = s + duration;
        let better = match best {
            None => true,
            Some((_, _, bf)) => f < bf,
        };
        if better {
            best = Some((v, s, f));
        }
    }
    best.expect("network has at least one node")
}

/// The node minimizing the earliest *start* time of `t` (ETF's criterion),
/// with the corresponding `(start, finish)`. Ties go to the earlier finish.
///
/// Like [`best_eft_node`], nodes are pruned when even their data-ready lower
/// bound starts strictly after the incumbent (a strictly later start can
/// never win, and an equal one only refines the finish tie-break, which the
/// bound does not exclude) — the outcome is bit-identical to the full sweep.
/// Append-policy queries take the fused row pass plus the lexicographic
/// argmin when the row kernels are enabled.
pub fn best_est_node(ctx: &SchedContext, t: TaskId, insertion: bool) -> (NodeId, f64, f64) {
    let nv = ctx.node_count();
    if !insertion && fused_rows_profitable(nv) {
        let mut starts = [0.0f64; STACK_NODES];
        let mut finishes = [0.0f64; STACK_NODES];
        ctx.eft_row_append_into(t, &mut starts[..nv], &mut finishes[..nv]);
        let v = saga_core::argmin_start_finish(&starts[..nv], &finishes[..nv]);
        return (v, starts[v.index()], finishes[v.index()]);
    }
    let mut ready_buf = [0.0f64; STACK_NODES];
    let batched = nv <= STACK_NODES;
    if batched {
        ctx.data_ready_times_into(t, &mut ready_buf[..nv]);
    }
    let mut best: Option<(NodeId, f64, f64)> = None;
    for v in ctx.nodes() {
        let ready = if batched {
            ready_buf[v.index()]
        } else {
            ctx.data_ready_time(t, v)
        };
        if let Some((_, bs, _)) = best {
            if ready > bs {
                continue;
            }
        }
        let duration = ctx.exec_time(t, v);
        let s = if insertion {
            ctx.earliest_start_insertion(v, ready, duration)
        } else {
            ctx.earliest_start_append(v, ready)
        };
        let f = s + duration;
        let better = match best {
            None => true,
            Some((_, bs, bf)) => s < bs || (s == bs && f < bf),
        };
        if better {
            best = Some((v, s, f));
        }
    }
    best.expect("network has at least one node")
}

/// The node of the predecessor whose message constrains `t`'s start the most
/// if `t` were to run anywhere else — FCP/FLB's "enabling node". Falls back
/// to the fastest node for source tasks.
pub fn enabling_node(ctx: &SchedContext, t: TaskId) -> NodeId {
    let mut best: Option<(f64, NodeId)> = None;
    for (p, _) in ctx.preds(t) {
        let arrival = ctx.finish_time(p); // message is free on the sender's own node
        let candidate = (arrival, ctx.node_of(p));
        let better = match best {
            None => true,
            // the *last* arriving message defines the enabling node
            Some((ba, _)) => arrival > ba,
        };
        if better {
            best = Some(candidate);
        }
    }
    best.map(|(_, v)| v).unwrap_or_else(|| ctx.fastest_node())
}

/// The node whose timeline frees up first (FCP/FLB's "first idle" candidate):
/// an ascending strict-less scan over the kernel's maintained append-tail
/// row — the same selection as folding `earliest_start_append(v, 0.0)` per
/// node (tails are never negative), without the per-node timeline derefs.
///
/// # Panics
/// Panics on an empty network, like its sibling selectors — silently
/// answering `NodeId(0)` would index out of bounds one call later.
pub fn first_idle_node(ctx: &SchedContext) -> NodeId {
    let tails = ctx.append_tails();
    assert!(!tails.is_empty(), "network has at least one node");
    let mut best = 0usize;
    let mut bt = tails[0];
    for (v, &t) in tails.iter().enumerate().skip(1) {
        if t < bt {
            best = v;
            bt = t;
        }
    }
    NodeId(best as u32)
}

/// Replays the longest trustworthy prefix of `trace` into `ctx` for a
/// *frontier-scanning* scheduler (MinMin/MaxMin-class selection over the
/// ready set, or lowest-id-ready topological dispatch): each recorded
/// placement is re-applied verbatim — skipping the scheduler's EFT and
/// data-ready scans — until the dirty region reaches the frontier.
///
/// The replay stops before position `k` when the recorded task is
/// placement-dirty or — for `frontier_sensitive` schedulers, whose per-step
/// selection *compares* values across the ready set (MinMin/MaxMin-class
/// EFT scans) — when any dirty task sits in the ready frontier;
/// `extra_stop` lets rank-tie-breaking schedulers add their own condition
/// (e.g. "a task whose rank bits changed is in the frontier"). Schedulers
/// that dispatch purely by ready order (lowest-id ready = topological
/// order: FastestNode, MCT, MET, OLB) pass `frontier_sensitive = false`: a
/// dirty task's changed *values* cannot influence their selection, only
/// its changed *readiness* can — so the frontier check is still applied
/// whenever the dirty region is structural.
///
/// Until the stop point the previous run's frontier evolution and per-step
/// selections provably coincide with what a full run on the perturbed
/// instance would compute — a dirty task can only influence a selection
/// once it is ready (it is scanned) or placed (its recorded decision used
/// stale inputs), and non-dirty tasks' EFT inputs are bitwise unchanged by
/// induction over the identical prefix. Returns nothing: the caller's
/// normal decision loop continues from whatever `ctx` state is left.
pub(crate) fn replay_frontier_prefix(
    ctx: &mut SchedContext,
    trace: &RunTrace,
    dirty: &DirtyRegion,
    frontier_sensitive: bool,
    mut extra_stop: impl FnMut(&SchedContext, usize) -> bool,
) {
    if dirty.is_full() || !trace.matches(ctx.task_count(), ctx.node_count()) {
        return;
    }
    let check_frontier = frontier_sensitive || dirty.is_structural();
    for k in 0..trace.len() {
        let t = trace.task(k);
        if dirty.contains(t) || (check_frontier && dirty.any_in_frontier(ctx)) || extra_stop(ctx, k)
        {
            break;
        }
        ctx.place(t, trace.node(k), trace.start(k));
    }
}

/// Test fixtures shared by the scheduler unit tests and downstream crates'
/// integration tests.
#[doc(hidden)]
pub mod fixtures {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use saga_core::{Instance, Network, NodeId, TaskGraph};

    /// The paper's Fig. 1 instance (4 tasks, 3 heterogeneous nodes).
    pub fn fig1() -> Instance {
        let mut g = TaskGraph::new();
        let t1 = g.add_task("t1", 1.7);
        let t2 = g.add_task("t2", 1.2);
        let t3 = g.add_task("t3", 2.2);
        let t4 = g.add_task("t4", 0.8);
        g.add_dependency(t1, t2, 0.6).unwrap();
        g.add_dependency(t1, t3, 0.5).unwrap();
        g.add_dependency(t2, t4, 1.3).unwrap();
        g.add_dependency(t3, t4, 1.6).unwrap();
        let mut n = Network::complete(&[1.0, 1.2, 1.5], 1.0);
        n.set_link(NodeId(0), NodeId(1), 0.5);
        n.set_link(NodeId(0), NodeId(2), 1.0);
        n.set_link(NodeId(1), NodeId(2), 1.2);
        Instance::new(n, g)
    }

    /// The paper's Fig. 3 fork-join instance on its *original* network
    /// (homogeneous unit speeds and links).
    pub fn fig3_original() -> Instance {
        Instance::new(Network::complete(&[1.0, 1.0, 1.0], 1.0), fig3_graph())
    }

    /// The paper's Fig. 3 instance on the *modified* network (node 3's links
    /// weakened to 0.5).
    pub fn fig3_modified() -> Instance {
        let mut n = Network::complete(&[1.0, 1.0, 1.0], 1.0);
        n.set_link(NodeId(0), NodeId(2), 0.5);
        n.set_link(NodeId(1), NodeId(2), 0.5);
        Instance::new(n, fig3_graph())
    }

    /// A variant of Fig. 3 with node 3 slightly faster (speed 1.25), on the
    /// original strong links. With deterministic lowest-id tie-breaking our
    /// HEFT never chooses node 3 on the *exact* paper instance (all EFTs tie
    /// and the paper's Python implementation happened to break ties toward
    /// node 3); nudging node 3's speed makes HEFT genuinely prefer it, which
    /// reproduces the paper's phenomenon without relying on tie order.
    pub fn fig3_variant_original() -> Instance {
        Instance::new(Network::complete(&[1.0, 1.0, 1.25], 1.0), fig3_graph())
    }

    /// The [`fig3_variant_original`] network with node 3's links weakened to
    /// 0.5 — the "minor alteration" that flips HEFT vs CPoP.
    pub fn fig3_variant_modified() -> Instance {
        let mut n = Network::complete(&[1.0, 1.0, 1.25], 1.0);
        n.set_link(NodeId(0), NodeId(2), 0.5);
        n.set_link(NodeId(1), NodeId(2), 0.5);
        Instance::new(n, fig3_graph())
    }

    fn fig3_graph() -> TaskGraph {
        let mut g = TaskGraph::new();
        let t1 = g.add_task("1", 3.0);
        let t2 = g.add_task("2", 3.0);
        let t3 = g.add_task("3", 3.0);
        let t4 = g.add_task("4", 3.0);
        let t5 = g.add_task("5", 3.0);
        g.add_dependency(t1, t2, 2.0).unwrap();
        g.add_dependency(t1, t3, 2.0).unwrap();
        g.add_dependency(t1, t4, 2.0).unwrap();
        g.add_dependency(t2, t5, 3.0).unwrap();
        g.add_dependency(t3, t5, 3.0).unwrap();
        g.add_dependency(t4, t5, 3.0).unwrap();
        g
    }

    /// A seeded random DAG instance: `tasks` tasks with edge probability
    /// `p_edge` (forward edges only, so always a DAG), `nodes` nodes,
    /// weights uniform in `(0, 1]`.
    pub fn random_instance(seed: u64, tasks: usize, nodes: usize, p_edge: f64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = TaskGraph::with_capacity(tasks);
        let ids: Vec<_> = (0..tasks)
            .map(|i| g.add_task(format!("t{i}"), rng.gen_range(0.01..=1.0)))
            .collect();
        for i in 0..tasks {
            for j in (i + 1)..tasks {
                if rng.gen_bool(p_edge) {
                    g.add_dependency(ids[i], ids[j], rng.gen_range(0.01..=1.0))
                        .unwrap();
                }
            }
        }
        let speeds: Vec<f64> = (0..nodes).map(|_| rng.gen_range(0.1..=1.0)).collect();
        let mut n = Network::complete(&speeds, 1.0);
        for u in 0..nodes {
            for v in (u + 1)..nodes {
                n.set_link(NodeId(u as u32), NodeId(v as u32), rng.gen_range(0.1..=1.0));
            }
        }
        Instance::new(n, g)
    }

    /// A battery of small instances for smoke tests: the paper figures plus
    /// a spread of random shapes (including a single-node network and an
    /// edgeless graph).
    pub fn smoke_instances() -> Vec<Instance> {
        let mut v = vec![fig1(), fig3_original(), fig3_modified()];
        v.push(random_instance(1, 8, 3, 0.3));
        v.push(random_instance(2, 12, 4, 0.2));
        v.push(random_instance(3, 5, 1, 0.5)); // single node
        v.push(random_instance(4, 1, 3, 0.0)); // single task
        v.push({
            // independent tasks (no edges)
            let mut g = TaskGraph::new();
            for i in 0..6 {
                g.add_task(format!("t{i}"), 0.5 + i as f64 * 0.1);
            }
            Instance::new(Network::complete(&[1.0, 0.5, 2.0], 0.7), g)
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_for(inst: &saga_core::Instance) -> SchedContext {
        let mut ctx = SchedContext::new();
        ctx.reset(inst);
        ctx
    }

    #[test]
    fn ready_queue_starts_with_sources() {
        let inst = fixtures::fig1();
        let ctx = ctx_for(&inst);
        assert_eq!(ctx.ready(), &[TaskId(0)]);
    }

    #[test]
    fn best_eft_node_prefers_faster_node() {
        let inst = fixtures::fig1();
        let ctx = ctx_for(&inst);
        // t1 alone: fastest node (v2, speed 1.5) gives the earliest finish
        let (v, s, f) = best_eft_node(&ctx, TaskId(0), true);
        assert_eq!(v, NodeId(2));
        assert_eq!(s, 0.0);
        assert!((f - 1.7 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn best_est_node_prefers_earliest_start_then_finish() {
        let inst = fixtures::fig1();
        let mut ctx = ctx_for(&inst);
        ctx.place(TaskId(0), NodeId(0), 0.0); // occupies node 0 until 1.7
                                              // t2's data is ready everywhere at different times; all idle nodes
                                              // can start at data-ready, so the earliest-start winner is the node
                                              // with the cheapest incoming message, ties broken by finish
        let (v, s, f) = best_est_node(&ctx, TaskId(1), false);
        let mut expect: Option<(NodeId, f64, f64)> = None;
        for cand in ctx.nodes() {
            let (cs, cf) = ctx.eft(TaskId(1), cand, false);
            let better = match expect {
                None => true,
                Some((_, bs, bf)) => cs < bs || (cs == bs && cf < bf),
            };
            if better {
                expect = Some((cand, cs, cf));
            }
        }
        assert_eq!(Some((v, s, f)), expect);
    }

    #[test]
    fn first_idle_node_is_empty_node() {
        let inst = fixtures::fig1();
        let mut ctx = ctx_for(&inst);
        ctx.place(TaskId(0), NodeId(0), 0.0);
        let v = first_idle_node(&ctx);
        assert_ne!(v, NodeId(0));
    }

    #[test]
    #[should_panic(expected = "network has at least one node")]
    fn first_idle_node_panics_on_empty_network() {
        let g = saga_core::TaskGraph::new();
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[], 1.0), g);
        let ctx = ctx_for(&inst);
        first_idle_node(&ctx);
    }

    #[test]
    fn enabling_node_is_latest_predecessor() {
        let inst = fixtures::fig1();
        let mut ctx = ctx_for(&inst);
        ctx.place(TaskId(0), NodeId(2), 0.0);
        ctx.place(TaskId(1), NodeId(1), 5.0); // finishes last
        ctx.place(TaskId(2), NodeId(2), 2.0);
        assert_eq!(enabling_node(&ctx, TaskId(3)), NodeId(1));
    }

    #[test]
    fn enabling_node_of_source_is_fastest() {
        let inst = fixtures::fig1();
        let ctx = ctx_for(&inst);
        assert_eq!(enabling_node(&ctx, TaskId(0)), NodeId(2));
    }

    #[test]
    fn random_instance_is_reproducible() {
        let a = fixtures::random_instance(9, 10, 3, 0.3);
        let b = fixtures::random_instance(9, 10, 3, 0.3);
        assert_eq!(a.graph.task_count(), b.graph.task_count());
        assert_eq!(a.graph.dependency_count(), b.graph.dependency_count());
        assert_eq!(a.to_json(), b.to_json());
    }
}
