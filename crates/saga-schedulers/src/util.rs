//! Shared helpers for list schedulers, plus reusable test fixtures.

use saga_core::{NodeId, ScheduleBuilder, TaskId};

/// Tasks that are unplaced and have all predecessors placed.
pub fn ready_tasks(b: &ScheduleBuilder<'_>) -> Vec<TaskId> {
    b.instance()
        .graph
        .tasks()
        .filter(|&t| !b.is_placed(t) && b.is_ready(t))
        .collect()
}

/// The node minimizing the earliest finish time of `t`, with the
/// corresponding `(start, finish)`. Ties go to the lower node id.
pub fn best_eft_node(b: &ScheduleBuilder<'_>, t: TaskId, insertion: bool) -> (NodeId, f64, f64) {
    let mut best: Option<(NodeId, f64, f64)> = None;
    for v in b.instance().network.nodes() {
        let (s, f) = b.eft(t, v, insertion);
        let better = match best {
            None => true,
            Some((_, _, bf)) => f < bf,
        };
        if better {
            best = Some((v, s, f));
        }
    }
    best.expect("network has at least one node")
}

/// The node minimizing the earliest *start* time of `t` (ETF's criterion),
/// with the corresponding `(start, finish)`. Ties go to the earlier finish.
pub fn best_est_node(b: &ScheduleBuilder<'_>, t: TaskId, insertion: bool) -> (NodeId, f64, f64) {
    let mut best: Option<(NodeId, f64, f64)> = None;
    for v in b.instance().network.nodes() {
        let (s, f) = b.eft(t, v, insertion);
        let better = match best {
            None => true,
            Some((_, bs, bf)) => s < bs || (s == bs && f < bf),
        };
        if better {
            best = Some((v, s, f));
        }
    }
    best.expect("network has at least one node")
}

/// The node of the predecessor whose message constrains `t`'s start the most
/// if `t` were to run anywhere else — FCP/FLB's "enabling node". Falls back
/// to the fastest node for source tasks.
pub fn enabling_node(b: &ScheduleBuilder<'_>, t: TaskId) -> NodeId {
    let g = &b.instance().graph;
    let mut best: Option<(f64, NodeId)> = None;
    for e in g.predecessors(t) {
        let arrival = b.finish_time(e.task); // message is free on the sender's own node
        let candidate = (arrival, b.node_of(e.task));
        let better = match best {
            None => true,
            // the *last* arriving message defines the enabling node
            Some((ba, _)) => arrival > ba,
        };
        if better {
            best = Some(candidate);
        }
    }
    best.map(|(_, v)| v)
        .unwrap_or_else(|| b.instance().network.fastest_node())
}

/// The node whose timeline frees up first (FCP/FLB's "first idle" candidate).
pub fn first_idle_node(b: &ScheduleBuilder<'_>) -> NodeId {
    let mut best = NodeId(0);
    let mut best_t = f64::INFINITY;
    for v in b.instance().network.nodes() {
        let t = b.earliest_start_append(v, 0.0);
        if t < best_t {
            best_t = t;
            best = v;
        }
    }
    best
}

/// Test fixtures shared by the scheduler unit tests and downstream crates'
/// integration tests.
#[doc(hidden)]
pub mod fixtures {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use saga_core::{Instance, Network, NodeId, TaskGraph};

    /// The paper's Fig. 1 instance (4 tasks, 3 heterogeneous nodes).
    pub fn fig1() -> Instance {
        let mut g = TaskGraph::new();
        let t1 = g.add_task("t1", 1.7);
        let t2 = g.add_task("t2", 1.2);
        let t3 = g.add_task("t3", 2.2);
        let t4 = g.add_task("t4", 0.8);
        g.add_dependency(t1, t2, 0.6).unwrap();
        g.add_dependency(t1, t3, 0.5).unwrap();
        g.add_dependency(t2, t4, 1.3).unwrap();
        g.add_dependency(t3, t4, 1.6).unwrap();
        let mut n = Network::complete(&[1.0, 1.2, 1.5], 1.0);
        n.set_link(NodeId(0), NodeId(1), 0.5);
        n.set_link(NodeId(0), NodeId(2), 1.0);
        n.set_link(NodeId(1), NodeId(2), 1.2);
        Instance::new(n, g)
    }

    /// The paper's Fig. 3 fork-join instance on its *original* network
    /// (homogeneous unit speeds and links).
    pub fn fig3_original() -> Instance {
        Instance::new(Network::complete(&[1.0, 1.0, 1.0], 1.0), fig3_graph())
    }

    /// The paper's Fig. 3 instance on the *modified* network (node 3's links
    /// weakened to 0.5).
    pub fn fig3_modified() -> Instance {
        let mut n = Network::complete(&[1.0, 1.0, 1.0], 1.0);
        n.set_link(NodeId(0), NodeId(2), 0.5);
        n.set_link(NodeId(1), NodeId(2), 0.5);
        Instance::new(n, fig3_graph())
    }

    /// A variant of Fig. 3 with node 3 slightly faster (speed 1.25), on the
    /// original strong links. With deterministic lowest-id tie-breaking our
    /// HEFT never chooses node 3 on the *exact* paper instance (all EFTs tie
    /// and the paper's Python implementation happened to break ties toward
    /// node 3); nudging node 3's speed makes HEFT genuinely prefer it, which
    /// reproduces the paper's phenomenon without relying on tie order.
    pub fn fig3_variant_original() -> Instance {
        Instance::new(Network::complete(&[1.0, 1.0, 1.25], 1.0), fig3_graph())
    }

    /// The [`fig3_variant_original`] network with node 3's links weakened to
    /// 0.5 — the "minor alteration" that flips HEFT vs CPoP.
    pub fn fig3_variant_modified() -> Instance {
        let mut n = Network::complete(&[1.0, 1.0, 1.25], 1.0);
        n.set_link(NodeId(0), NodeId(2), 0.5);
        n.set_link(NodeId(1), NodeId(2), 0.5);
        Instance::new(n, fig3_graph())
    }

    fn fig3_graph() -> TaskGraph {
        let mut g = TaskGraph::new();
        let t1 = g.add_task("1", 3.0);
        let t2 = g.add_task("2", 3.0);
        let t3 = g.add_task("3", 3.0);
        let t4 = g.add_task("4", 3.0);
        let t5 = g.add_task("5", 3.0);
        g.add_dependency(t1, t2, 2.0).unwrap();
        g.add_dependency(t1, t3, 2.0).unwrap();
        g.add_dependency(t1, t4, 2.0).unwrap();
        g.add_dependency(t2, t5, 3.0).unwrap();
        g.add_dependency(t3, t5, 3.0).unwrap();
        g.add_dependency(t4, t5, 3.0).unwrap();
        g
    }

    /// A seeded random DAG instance: `tasks` tasks with edge probability
    /// `p_edge` (forward edges only, so always a DAG), `nodes` nodes,
    /// weights uniform in `(0, 1]`.
    pub fn random_instance(seed: u64, tasks: usize, nodes: usize, p_edge: f64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = TaskGraph::with_capacity(tasks);
        let ids: Vec<_> = (0..tasks)
            .map(|i| g.add_task(format!("t{i}"), rng.gen_range(0.01..=1.0)))
            .collect();
        for i in 0..tasks {
            for j in (i + 1)..tasks {
                if rng.gen_bool(p_edge) {
                    g.add_dependency(ids[i], ids[j], rng.gen_range(0.01..=1.0))
                        .unwrap();
                }
            }
        }
        let speeds: Vec<f64> = (0..nodes).map(|_| rng.gen_range(0.1..=1.0)).collect();
        let mut n = Network::complete(&speeds, 1.0);
        for u in 0..nodes {
            for v in (u + 1)..nodes {
                n.set_link(NodeId(u as u32), NodeId(v as u32), rng.gen_range(0.1..=1.0));
            }
        }
        Instance::new(n, g)
    }

    /// A battery of small instances for smoke tests: the paper figures plus
    /// a spread of random shapes (including a single-node network and an
    /// edgeless graph).
    pub fn smoke_instances() -> Vec<Instance> {
        let mut v = vec![fig1(), fig3_original(), fig3_modified()];
        v.push(random_instance(1, 8, 3, 0.3));
        v.push(random_instance(2, 12, 4, 0.2));
        v.push(random_instance(3, 5, 1, 0.5)); // single node
        v.push(random_instance(4, 1, 3, 0.0)); // single task
        v.push({
            // independent tasks (no edges)
            let mut g = TaskGraph::new();
            for i in 0..6 {
                g.add_task(format!("t{i}"), 0.5 + i as f64 * 0.1);
            }
            Instance::new(Network::complete(&[1.0, 0.5, 2.0], 0.7), g)
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saga_core::ScheduleBuilder;

    #[test]
    fn ready_tasks_start_with_sources() {
        let inst = fixtures::fig1();
        let b = ScheduleBuilder::new(&inst);
        assert_eq!(ready_tasks(&b), vec![TaskId(0)]);
    }

    #[test]
    fn best_eft_node_prefers_faster_node() {
        let inst = fixtures::fig1();
        let b = ScheduleBuilder::new(&inst);
        // t1 alone: fastest node (v2, speed 1.5) gives the earliest finish
        let (v, s, f) = best_eft_node(&b, TaskId(0), true);
        assert_eq!(v, NodeId(2));
        assert_eq!(s, 0.0);
        assert!((f - 1.7 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn first_idle_node_is_empty_node() {
        let inst = fixtures::fig1();
        let mut b = ScheduleBuilder::new(&inst);
        b.place(TaskId(0), NodeId(0), 0.0);
        let v = first_idle_node(&b);
        assert_ne!(v, NodeId(0));
    }

    #[test]
    fn enabling_node_is_latest_predecessor() {
        let inst = fixtures::fig1();
        let mut b = ScheduleBuilder::new(&inst);
        b.place(TaskId(0), NodeId(2), 0.0);
        b.place(TaskId(1), NodeId(1), 5.0); // finishes last
        b.place(TaskId(2), NodeId(2), 2.0);
        assert_eq!(enabling_node(&b, TaskId(3)), NodeId(1));
    }

    #[test]
    fn enabling_node_of_source_is_fastest() {
        let inst = fixtures::fig1();
        let b = ScheduleBuilder::new(&inst);
        assert_eq!(enabling_node(&b, TaskId(0)), NodeId(2));
    }

    #[test]
    fn random_instance_is_reproducible() {
        let a = fixtures::random_instance(9, 10, 3, 0.3);
        let b = fixtures::random_instance(9, 10, 3, 0.3);
        assert_eq!(a.graph.task_count(), b.graph.task_count());
        assert_eq!(a.graph.dependency_count(), b.graph.dependency_count());
        assert_eq!(a.to_json(), b.to_json());
    }
}
