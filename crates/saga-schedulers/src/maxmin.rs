//! MaxMin (Braun et al. 2001), generalized to precedence constraints.
//!
//! The mirror image of MinMin: among ready tasks, schedule the one whose
//! *minimum* completion time is *largest* (get the big rocks in early).
//! Complexity `O(|T|^2 |V|)`.

use crate::minmin::{min_max_run, min_max_run_recorded};
use crate::KernelRun;
use saga_core::{DirtyRegion, Instance, RunTrace, SchedContext};

/// The MaxMin scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxMin;

impl KernelRun for MaxMin {
    fn kernel_name(&self) -> &'static str {
        "MaxMin"
    }

    fn run(&self, inst: &Instance, ctx: &mut SchedContext) {
        min_max_run(inst, ctx, true);
    }

    fn run_recorded(
        &self,
        inst: &Instance,
        ctx: &mut SchedContext,
        trace: &mut RunTrace,
        dirty: &DirtyRegion,
    ) {
        min_max_run_recorded(inst, ctx, true, trace, dirty);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::fixtures;
    use crate::Scheduler;

    #[test]
    fn schedules_are_valid_on_smoke_instances() {
        for inst in fixtures::smoke_instances() {
            let s = MaxMin.schedule(&inst);
            s.verify(&inst).expect("MaxMin schedule must be valid");
        }
    }

    #[test]
    fn schedules_longest_tasks_first() {
        let mut g = saga_core::TaskGraph::new();
        let big = g.add_task("big", 3.0);
        let small = g.add_task("small", 1.0);
        let mid = g.add_task("mid", 2.0);
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0], 1.0), g);
        let s = MaxMin.schedule(&inst);
        assert!(s.assignment(big).start < s.assignment(mid).start);
        assert!(s.assignment(mid).start < s.assignment(small).start);
    }

    #[test]
    fn differs_from_minmin_on_skewed_loads() {
        // classic example: two nodes, tasks {2, 1, 1}; MaxMin places the big
        // task first and packs the small ones opposite it (makespan 2) while
        // MinMin burns both nodes on the small tasks and serializes the big
        // one after (makespan 3)
        let mut g = saga_core::TaskGraph::new();
        g.add_task("a", 2.0);
        g.add_task("b", 1.0);
        g.add_task("c", 1.0);
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0, 1.0], 1.0), g);
        let maxmin = MaxMin.schedule(&inst).makespan();
        let minmin = crate::MinMin.schedule(&inst).makespan();
        assert!((maxmin - 2.0).abs() < 1e-9, "maxmin {maxmin}");
        assert!((minmin - 3.0).abs() < 1e-9, "minmin {minmin}");
    }
}
